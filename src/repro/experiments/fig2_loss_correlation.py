"""Figure 2: flow-level vs queue-level loss correlation.

Paper claim: the fraction of "high RTT" periods that end in a loss is
much higher when losses are measured at the bottleneck *queue* than when
only the observed flow's own losses are counted — so the prior tcpdump
studies ([21], [26]) underestimated how well RTT predicts congestion.

For each traffic case, the observed flow's RTT trace is thresholded a
few milliseconds above its propagation delay (the paper uses 65 ms
against a 60 ms path) and the high→loss transition fraction is computed
under both loss definitions.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..predictors.analysis import high_to_loss_fraction
from ..predictors.threshold import InstantRttPredictor
from .report import format_table
from .section2 import CaseTrace, TrafficCase, collect_case_trace, default_cases

__all__ = ["run", "rows_from_traces", "validation_metrics", "main"]

PAPER_EXPECTATION = (
    "Queue-level high->loss fraction well above the flow-level fraction "
    "in every case (paper Figure 2: ~0.6-0.9 vs ~0.1-0.4)."
)


def rows_from_traces(traces: Dict[str, CaseTrace],
                     threshold_margin: float = 0.005) -> List[dict]:
    """Score the fixed-threshold predictor under both loss definitions."""
    rows = []
    for name, tr in traces.items():
        if not tr.rtt_trace:
            continue
        base = min(r for _, r, _ in tr.rtt_trace)
        threshold = base + threshold_margin
        coalesce = 2.0 * tr.base_rtt
        flow_frac = high_to_loss_fraction(
            InstantRttPredictor(threshold), tr.rtt_trace, tr.flow_losses,
            coalesce=coalesce,
        )
        queue_frac = high_to_loss_fraction(
            InstantRttPredictor(threshold), tr.rtt_trace, tr.queue_drops,
            coalesce=coalesce,
        )
        rows.append(
            {
                "case": name,
                "long_flows": tr.case.n_fwd + tr.case.n_rev,
                "web": tr.case.web_sessions,
                "flow_level": flow_frac,
                "queue_level": queue_frac,
                # raw evidence for the same claim: queue-level loss events
                # vastly outnumber what the single flow observes
                "flow_loss_events": len(tr.flow_losses),
                "queue_drop_events": len(tr.queue_drops),
            }
        )
    return rows


def run(
    cases: Optional[List[TrafficCase]] = None,
    bandwidth: float = 16e6,
    duration: float = 60.0,
    seed: int = 1,
) -> List[dict]:
    """Collect traces for every case and compute the Figure 2 rows."""
    cases = cases if cases is not None else default_cases()
    traces = {
        c.name: collect_case_trace(c, bandwidth=bandwidth, duration=duration,
                                   seed=seed)
        for c in cases
    }
    return rows_from_traces(traces)


def validation_metrics(rows: List[dict]) -> Dict[str, float]:
    """Flatten :func:`run` output for ``repro.validate`` (per-case fractions)."""
    from ..validate.extract import rows_to_metrics

    return rows_to_metrics(rows, metrics=("flow_level", "queue_level"),
                           prefix_col="case")


def main() -> None:
    rows = run()
    print(format_table(rows, ["case", "long_flows", "web", "flow_level",
                              "queue_level"],
                       title="Figure 2 — high-RTT -> loss transition fraction"))
    print(f"\nPaper expectation: {PAPER_EXPECTATION}")


if __name__ == "__main__":
    main()
