"""Figure 6: impact of bottleneck link bandwidth.

Paper setup: bandwidth swept 1 Mbps - 1 Gbps (log axis), RTT 60 ms, flow
count scaled with bandwidth so the link stays utilized.  Reproduced here
over a scaled log-spaced range (1-32 Mbps by default; pass a wider
``bandwidths`` list on faster hardware).

Paper claims to reproduce:

* PERT's average queue is similar to (sometimes below) SACK/RED-ECN;
* SACK/DropTail's queue stays high;
* Vegas' queue can exceed DropTail's in some cases;
* the proactive schemes (RED-ECN, PERT, Vegas) keep ~zero loss;
* PERT's utilization dips only at small bandwidths (short buffers);
* PERT fairness stays near 1.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .report import format_table
from .scenarios import ScenarioPoint, ScenarioSpec
from .sweep import SECTION4_SCHEMES

__all__ = ["spec", "run", "validation_metrics", "main", "DEFAULT_BANDWIDTHS"]

PAPER_EXPECTATION = (
    "Queue: droptail high, PERT <= RED-ECN, Vegas sometimes above "
    "droptail.  Drops: ~0 for PERT/RED-ECN/Vegas, high for droptail.  "
    "Utilization: all high except PERT at the smallest buffers.  "
    "Fairness: PERT ~1, Vegas low."
)

DEFAULT_BANDWIDTHS = [1e6, 2e6, 4e6, 8e6, 16e6, 32e6]


def _flows_for_bandwidth(bw: float) -> int:
    """Scale the flow population with bandwidth as the paper does."""
    return max(3, min(40, int(round(bw / 1e6)) * 2))


def spec(
    bandwidths: Optional[Sequence[float]] = None,
    rtt: float = 0.060,
    duration: float = 40.0,
    warmup: float = 15.0,
    seed: int = 1,
    schemes: Sequence[str] = SECTION4_SCHEMES,
    web_sessions: int = 3,
) -> ScenarioSpec:
    """Declarative sweep spec for this figure."""
    bandwidths = list(bandwidths) if bandwidths is not None else DEFAULT_BANDWIDTHS
    points = [
        ScenarioPoint(
            overrides={"bandwidth": bw, "n_fwd": _flows_for_bandwidth(bw)},
            tags={"bandwidth_mbps": bw / 1e6, "n_fwd": _flows_for_bandwidth(bw)},
        )
        for bw in bandwidths
    ]
    return ScenarioSpec(
        name="fig6_bandwidth",
        title="Figure 6 — impact of bottleneck bandwidth",
        points=points,
        schemes=tuple(schemes),
        base=dict(rtt=rtt, duration=duration, warmup=warmup, seed=seed,
                  web_sessions=web_sessions),
        columns=("bandwidth_mbps", "n_fwd", "scheme", "norm_queue",
                 "drop_rate", "utilization", "jain"),
        expectation=PAPER_EXPECTATION,
    )


def run(
    bandwidths: Optional[Sequence[float]] = None,
    rtt: float = 0.060,
    duration: float = 40.0,
    warmup: float = 15.0,
    seed: int = 1,
    schemes: Sequence[str] = SECTION4_SCHEMES,
    web_sessions: int = 3,
) -> List[dict]:
    return spec(bandwidths, rtt=rtt, duration=duration, warmup=warmup,
                seed=seed, schemes=schemes, web_sessions=web_sessions).run()


def validation_metrics(rows: List[dict]):
    """Flatten :func:`run` output for ``repro.validate`` (per-bandwidth rows)."""
    from ..validate.extract import rows_to_metrics

    return rows_to_metrics(
        rows, metrics=("norm_queue", "drop_rate", "utilization", "jain"),
        keys=("bandwidth_mbps",),
    )


def main() -> None:
    scenario = spec()
    rows = scenario.run()
    print(format_table(rows, list(scenario.columns), title=scenario.title))
    print(f"\nPaper expectation: {scenario.expectation}")


if __name__ == "__main__":
    main()
