"""Figure 7: impact of end-to-end RTT.

Paper setup: 150 Mbps bottleneck, 50 flows, RTT swept 10 ms - 1 s (log
axis).  Scaled default: 16 Mbps, 12 flows, RTT 20-400 ms; the run length
grows with RTT so every point reaches steady state.

Paper claims: PERT's queue and drop rate track SACK/RED-ECN (adaptive
RED has a small utilization edge since PERT's thresholds are fixed);
fairness stays high across the sweep.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .report import format_table
from .sweep import SECTION4_SCHEMES, result_row
from .common import run_dumbbell

__all__ = ["run", "main", "DEFAULT_RTTS"]

PAPER_EXPECTATION = (
    "Queue and drop rate of PERT similar to SACK/RED-ECN across RTTs; "
    "utilization high for all but dipping at extreme RTTs; Jain index "
    "high for PERT."
)

DEFAULT_RTTS = [0.02, 0.04, 0.06, 0.120, 0.240, 0.400]


def run(
    rtts: Optional[Sequence[float]] = None,
    bandwidth: float = 16e6,
    n_fwd: int = 12,
    seed: int = 1,
    schemes: Sequence[str] = SECTION4_SCHEMES,
    web_sessions: int = 3,
    base_duration: float = 40.0,
) -> List[dict]:
    rtts = list(rtts) if rtts is not None else DEFAULT_RTTS
    rows: List[dict] = []
    for rtt in rtts:
        # Longer feedback loops need longer runs: ~200 RTTs of steady state.
        duration = max(base_duration, 300.0 * rtt)
        warmup = duration * 0.375
        for scheme in schemes:
            result = run_dumbbell(
                scheme,
                bandwidth=bandwidth,
                rtt=rtt,
                n_fwd=n_fwd,
                duration=duration,
                warmup=warmup,
                seed=seed,
                web_sessions=web_sessions,
            )
            rows.append(result_row(result, {"rtt_ms": rtt * 1e3}))
    return rows


def main() -> None:
    rows = run()
    print(format_table(
        rows,
        ["rtt_ms", "scheme", "norm_queue", "drop_rate", "utilization", "jain"],
        title="Figure 7 — impact of end-to-end RTT",
    ))
    print(f"\nPaper expectation: {PAPER_EXPECTATION}")


if __name__ == "__main__":
    main()
