"""Figure 7: impact of end-to-end RTT.

Paper setup: 150 Mbps bottleneck, 50 flows, RTT swept 10 ms - 1 s (log
axis).  Scaled default: 16 Mbps, 12 flows, RTT 20-400 ms; the run length
grows with RTT so every point reaches steady state.

Paper claims: PERT's queue and drop rate track SACK/RED-ECN (adaptive
RED has a small utilization edge since PERT's thresholds are fixed);
fairness stays high across the sweep.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .report import format_table
from .scenarios import ScenarioPoint, ScenarioSpec
from .sweep import SECTION4_SCHEMES

__all__ = ["spec", "run", "validation_metrics", "main", "DEFAULT_RTTS"]

PAPER_EXPECTATION = (
    "Queue and drop rate of PERT similar to SACK/RED-ECN across RTTs; "
    "utilization high for all but dipping at extreme RTTs; Jain index "
    "high for PERT."
)

DEFAULT_RTTS = [0.02, 0.04, 0.06, 0.120, 0.240, 0.400]


def spec(
    rtts: Optional[Sequence[float]] = None,
    bandwidth: float = 16e6,
    n_fwd: int = 12,
    seed: int = 1,
    schemes: Sequence[str] = SECTION4_SCHEMES,
    web_sessions: int = 3,
    base_duration: float = 40.0,
) -> ScenarioSpec:
    """Declarative sweep spec for this figure.

    The run length is a per-point override — longer feedback loops need
    longer runs (~200 RTTs of steady state) — while only ``rtt_ms``
    appears as a row column.
    """
    rtts = list(rtts) if rtts is not None else DEFAULT_RTTS
    points = []
    for rtt in rtts:
        duration = max(base_duration, 300.0 * rtt)
        points.append(ScenarioPoint(
            overrides={"rtt": rtt, "duration": duration,
                       "warmup": duration * 0.375},
            tags={"rtt_ms": rtt * 1e3},
        ))
    return ScenarioSpec(
        name="fig7_rtt",
        title="Figure 7 — impact of end-to-end RTT",
        points=points,
        schemes=tuple(schemes),
        base=dict(bandwidth=bandwidth, n_fwd=n_fwd, seed=seed,
                  web_sessions=web_sessions),
        columns=("rtt_ms", "scheme", "norm_queue", "drop_rate",
                 "utilization", "jain"),
        expectation=PAPER_EXPECTATION,
    )


def run(
    rtts: Optional[Sequence[float]] = None,
    bandwidth: float = 16e6,
    n_fwd: int = 12,
    seed: int = 1,
    schemes: Sequence[str] = SECTION4_SCHEMES,
    web_sessions: int = 3,
    base_duration: float = 40.0,
) -> List[dict]:
    return spec(rtts, bandwidth=bandwidth, n_fwd=n_fwd, seed=seed,
                schemes=schemes, web_sessions=web_sessions,
                base_duration=base_duration).run()


def validation_metrics(rows: List[dict]):
    """Flatten :func:`run` output for ``repro.validate`` (per-RTT rows)."""
    from ..validate.extract import rows_to_metrics

    return rows_to_metrics(
        rows, metrics=("norm_queue", "drop_rate", "utilization", "jain"),
        keys=("rtt_ms",),
    )


def main() -> None:
    scenario = spec()
    rows = scenario.run()
    print(format_table(rows, list(scenario.columns), title=scenario.title))
    print(f"\nPaper expectation: {scenario.expectation}")


if __name__ == "__main__":
    main()
