"""Figure 11: multiple bottleneck links (parking-lot topology).

Paper setup (Figure 10): six routers R1..R6 joined by 150 Mbps / 5 ms
links, a 20-host cloud per router; each cloud sends to the next cloud
downstream, and cloud 1 additionally sends end-to-end to cloud 6.  The
figure reports, per router-router link: average queue, drop rate,
utilization, and the Jain index of the flows crossing it.

Scaled default: 16 Mbps core links, 5 hosts per cloud.

Paper claims: PERT holds low queues and zero drops on *every* hop (its
end-to-end delay signal sums the queues along the path), with
utilization like SACK/RED-ECN and fairness preserved for flows sharing
a common set of routers.
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, List, Optional, Sequence

from ..metrics.fairness import jain_index
from ..runner import parking_lot_spec, run_jobs
from ..sim.engine import Simulator
from ..sim.monitors import LinkWindow, QueueSampler
from ..sim.topology import make_topology
from ..tcp.base import connect_flow
from .report import format_table
from .scenarios import get_scheme, scheme_sender_kwargs
from .sweep import SECTION4_SCHEMES

__all__ = ["run_parking_lot", "run", "validation_metrics", "main"]

PAPER_EXPECTATION = (
    "PERT: low queue and zero drops on every hop; utilization similar "
    "to SACK/RED-ECN; per-hop fairness maintained (Figure 11)."
)


def run_parking_lot(
    scheme: str,
    n_routers: int = 6,
    cloud_size: int = 5,
    link_bw: float = 16e6,
    link_delay: float = 0.005,
    duration: float = 50.0,
    warmup: float = 20.0,
    seed: int = 1,
    pkt_size: int = 1000,
) -> List[Dict]:
    """One scheme over the parking lot; returns one row per core hop."""
    spec = get_scheme(scheme)
    sim = Simulator(seed=seed)
    # Path RTT for the longest (end-to-end) flows bounds the BDP.
    e2e_rtt = 2.0 * (link_delay * (n_routers - 1) + 2 * 0.005)
    buffer_pkts = max(
        int(round(link_bw * e2e_rtt / (8.0 * pkt_size))), 2 * cloud_size * 2, 8
    )
    n_hop_flows = cloud_size
    sender_kwargs = scheme_sender_kwargs(spec, link_bw, pkt_size,
                                         n_hop_flows * 2, e2e_rtt)

    def qdisc():
        return spec.make_qdisc(sim, buffer_pkts, link_bw, pkt_size,
                               n_hop_flows * 2, e2e_rtt)

    lot = make_topology(
        "parking_lot",
        sim,
        n_routers=n_routers,
        cloud_size=cloud_size,
        link_bw=link_bw,
        link_delay=link_delay,
        qdisc=qdisc,
    )
    flow_ids = itertools.count()
    rng = sim.stream("starts")
    hop_flows: List[List] = [[] for _ in range(n_routers - 1)]

    # Each cloud i sends to cloud i+1 (crossing hop i).
    for i in range(n_routers - 1):
        for j in range(cloud_size):
            fid = next(flow_ids)
            sender, sink = connect_flow(
                sim, lot.clouds[i][j], lot.clouds[i + 1][j], flow_id=fid,
                sender_cls=spec.sender_cls, pkt_size=pkt_size, **sender_kwargs,
            )
            sender.start(at=rng.uniform(0.0, 5.0))
            hop_flows[i].append((sender, sink))
    # Cloud 1 also sends end-to-end to the last cloud (crossing all hops).
    e2e_flows = []
    for j in range(cloud_size):
        fid = next(flow_ids)
        sender, sink = connect_flow(
            sim, lot.clouds[0][j], lot.clouds[-1][j], flow_id=fid,
            sender_cls=spec.sender_cls, pkt_size=pkt_size, **sender_kwargs,
        )
        sender.start(at=rng.uniform(0.0, 5.0))
        e2e_flows.append((sender, sink))

    fwd_links = [pair[0] for pair in lot.core_links]
    windows = [LinkWindow(sim, link) for link in fwd_links]
    samplers = [QueueSampler(sim, link.qdisc, interval=0.05) for link in fwd_links]

    sim.run(until=warmup)
    for w in windows:
        w.open()
    snapshots = [
        [sink.rcv_next for _, sink in hop_flows[i] + e2e_flows]
        for i in range(n_routers - 1)
    ]
    sim.run(until=duration)
    for w in windows:
        w.close()

    span = duration - warmup
    rows = []
    for i, (w, qs) in enumerate(zip(windows, samplers)):
        flows_here = hop_flows[i] + e2e_flows
        goodputs = [
            (sink.rcv_next - g0) * pkt_size * 8.0 / span
            for (_, sink), g0 in zip(flows_here, snapshots[i])
        ]
        rows.append(
            {
                "hop": f"R{i+1}-R{i+2}",
                "scheme": scheme,
                "norm_queue": qs.mean(warmup, duration) / buffer_pkts,
                "drop_rate": w.drop_rate,
                "utilization": w.utilization,
                "jain": jain_index(goodputs),
            }
        )
    return rows


def run(
    schemes: Sequence[str] = SECTION4_SCHEMES,
    *,
    workers: Optional[int] = None,
    cache=None,
    timeout: Optional[float] = None,
    retries: int = 1,
    progress=None,
    **kwargs,
) -> List[Dict]:
    """All schemes over the parking lot, one runner job per scheme."""
    schemes = tuple(schemes)
    specs = [parking_lot_spec(scheme, **kwargs) for scheme in schemes]
    results = run_jobs(
        specs, workers=workers, cache=cache, timeout=timeout,
        retries=retries, progress=progress,
    )
    rows: List[Dict] = []
    for scheme, res in zip(schemes, results):
        if res.ok:
            rows.extend(res.value["rows"])
        else:
            rows.append(
                {
                    "hop": "*",
                    "scheme": scheme,
                    "norm_queue": math.nan,
                    "drop_rate": math.nan,
                    "utilization": math.nan,
                    "jain": math.nan,
                    "failed": True,
                    "error": res.error or "unknown failure",
                }
            )
    return rows


def validation_metrics(rows: List[Dict]):
    """Flatten :func:`run` output for ``repro.validate`` (per-hop rows)."""
    from ..validate.extract import rows_to_metrics

    return rows_to_metrics(
        rows, metrics=("norm_queue", "drop_rate", "utilization", "jain"),
        keys=("hop",),
    )


def main() -> None:
    rows = run()
    print(format_table(
        rows,
        ["hop", "scheme", "norm_queue", "drop_rate", "utilization", "jain"],
        title="Figure 11 — multiple bottlenecks (parking lot)",
    ))
    print(f"\nPaper expectation: {PAPER_EXPECTATION}")


if __name__ == "__main__":
    main()
