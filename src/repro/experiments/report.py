"""Plain-text table rendering for experiment output.

Every experiment module prints its reproduction of a paper table/figure
as an aligned text table; benchmarks reuse the same rows.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

__all__ = ["format_table", "format_value"]


def format_value(v) -> str:
    """Human-friendly scalar formatting (probabilities in scientific)."""
    if isinstance(v, bool):
        return str(v)
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) < 1e-3:
            return f"{v:.2e}"
        if abs(v) >= 1e5:
            return f"{v:.3g}"
        return f"{v:.3f}"
    return str(v)


def format_table(rows: Sequence[Dict], columns: Sequence[str],
                 title: str = "") -> str:
    """Render dict-rows as an aligned text table with a rule under headers."""
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    cells: List[List[str]] = [[str(c) for c in columns]]
    for row in rows:
        cells.append([format_value(row.get(c, "")) for c in columns])
    widths = [max(len(r[i]) for r in cells) for i in range(len(columns))]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(c.ljust(w) for c, w in zip(cells[0], widths))
    lines.append(header)
    lines.append("-" * len(header))
    for r in cells[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)
