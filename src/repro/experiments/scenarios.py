"""Scheme registry: the protocol/queue combinations the paper compares.

Every Section 4 experiment contrasts

* ``sack-droptail``  — SACK TCP over tail-drop FIFOs,
* ``sack-red-ecn``   — ECN-enabled SACK over adaptive gentle RED,
* ``vegas``          — TCP Vegas over tail-drop FIFOs,
* ``pert``           — PERT over tail-drop FIFOs (no router support),

and Section 6 adds

* ``pert-pi``        — PERT emulating a PI controller, tail-drop FIFOs,
* ``sack-pi-ecn``    — ECN-enabled SACK over a router PI/ECN queue.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Type

from ..core.config import PertPiConfig
from ..core.pert import PertSender
from ..core.pert_owd import PertOwdSender
from ..core.pert_pi import PertPiSender
from ..core.pert_rem import PertRemSender
from ..fluid.stability import pert_pi_gains
from ..sim.engine import Simulator
from ..sim.queues import QueueConfig, QueueDiscipline, make_queue
from ..tcp.base import TcpSender
from ..tcp.reno import NewRenoSender
from ..tcp.sack import SackEcnSender, SackSender
from ..tcp.vegas import VegasSender

__all__ = [
    "Scheme",
    "SCHEMES",
    "get_scheme",
    "scheme_sender_kwargs",
    "ScenarioPoint",
    "ScenarioSpec",
]


@dataclass
class Scheme:
    """A (sender class, bottleneck queue factory) pairing.

    ``make_qdisc(sim, buffer_pkts, bandwidth_bps, pkt_size, n_flows, rtt)``
    builds the bottleneck queue; access and reverse-path queues are always
    generously sized DropTail (the paper's AQM sits only on the bottleneck).
    """

    name: str
    sender_cls: Type[TcpSender]
    make_qdisc: Callable[..., QueueDiscipline]
    sender_kwargs: Dict = field(default_factory=dict)


def _droptail(sim: Simulator, buffer_pkts: int, bandwidth_bps: float,
              pkt_size: int, n_flows: int, rtt: float) -> QueueDiscipline:
    return make_queue(QueueConfig("droptail", capacity_pkts=buffer_pkts))


def _adaptive_red(sim: Simulator, buffer_pkts: int, bandwidth_bps: float,
                  pkt_size: int, n_flows: int, rtt: float) -> QueueDiscipline:
    # Adaptive RED auto-thresholds: min_th from a ~10 ms target delay,
    # bounded to a quarter of the buffer; max_th = 3 * min_th per Floyd
    # et al.'s auto-configuration.
    pkt_rate = bandwidth_bps / (8.0 * pkt_size)
    min_th = max(5.0, min(0.01 * pkt_rate, buffer_pkts / 4.0))
    max_th = 3.0 * min_th
    cfg = QueueConfig(
        "red",
        capacity_pkts=buffer_pkts,
        params=dict(
            min_th=min_th,
            max_th=max_th,
            max_p=0.1,
            gentle=True,
            ecn=True,
            adaptive=True,
            mean_pkt_time=1.0 / pkt_rate,
        ),
    )
    return make_queue(cfg, sim=sim)


def _pi_queue(sim: Simulator, buffer_pkts: int, bandwidth_bps: float,
              pkt_size: int, n_flows: int, rtt: float) -> QueueDiscipline:
    # Gains from the TCP/PI design rule, expressed per packet of queue:
    # reuse Theorem 2's schedule divided by capacity (queue length = C*Tq).
    pkt_rate = bandwidth_bps / (8.0 * pkt_size)
    k, m = pert_pi_gains(capacity=pkt_rate, n_minus=max(1, n_flows // 2),
                         r_plus=max(rtt * 1.5, 0.05))
    sample_hz = 170.0
    delta = 1.0 / sample_hz
    gamma = k / m + k * delta / 2.0
    beta = k / m - k * delta / 2.0
    q_ref = max(1.0, 0.003 * pkt_rate)  # 3 ms target delay
    cfg = QueueConfig(
        "pi",
        capacity_pkts=buffer_pkts,
        params=dict(
            q_ref=q_ref,
            a=gamma / pkt_rate,
            b=beta / pkt_rate,
            sample_hz=sample_hz,
            ecn=True,
        ),
    )
    return make_queue(cfg, sim=sim)


def _make_pert_pi_kwargs(bandwidth_bps: float, pkt_size: int, n_flows: int,
                         rtt: float) -> Dict:
    pkt_rate = bandwidth_bps / (8.0 * pkt_size)
    k, m = pert_pi_gains(capacity=pkt_rate, n_minus=max(1, n_flows // 2),
                         r_plus=max(rtt * 1.5, 0.05))
    cfg = PertPiConfig(k=k, m=m, target_delay=0.003,
                       delta=max(1e-4, n_flows / pkt_rate))
    return {"config": cfg}


SCHEMES: Dict[str, Scheme] = {
    "sack-droptail": Scheme("sack-droptail", SackSender, _droptail),
    "sack-red-ecn": Scheme("sack-red-ecn", SackEcnSender, _adaptive_red),
    "vegas": Scheme("vegas", VegasSender, _droptail),
    "pert": Scheme("pert", PertSender, _droptail),
    "pert-pi": Scheme("pert-pi", PertPiSender, _droptail),
    "sack-pi-ecn": Scheme("sack-pi-ecn", SackEcnSender, _pi_queue),
    # Section 7 / generality extensions
    "pert-owd": Scheme("pert-owd", PertOwdSender, _droptail),
    "pert-rem": Scheme("pert-rem", PertRemSender, _droptail),
    # non-SACK reference stack (the Section 2 studies observed standard TCP)
    "newreno-droptail": Scheme("newreno-droptail", NewRenoSender, _droptail),
}


def get_scheme(name: str) -> Scheme:
    """Look up a scheme by name; raises KeyError with the valid names."""
    try:
        return SCHEMES[name]
    except KeyError:
        raise KeyError(f"unknown scheme {name!r}; valid: {sorted(SCHEMES)}") from None


def scheme_sender_kwargs(scheme: Scheme, bandwidth_bps: float, pkt_size: int,
                         n_flows: int, rtt: float) -> Dict:
    """Per-run sender kwargs (PERT-PI gains depend on the operating point)."""
    if scheme.sender_cls is PertPiSender:
        kw = dict(scheme.sender_kwargs)
        kw.update(_make_pert_pi_kwargs(bandwidth_bps, pkt_size, n_flows, rtt))
        return kw
    return dict(scheme.sender_kwargs)


# ---------------------------------------------------------------------------
# Declarative scenario specs (the Section 4 figure sweeps)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ScenarioPoint:
    """One sweep point of a scenario.

    ``overrides`` are :func:`repro.experiments.common.run_dumbbell`
    keyword overrides for this point; ``tags`` are the row columns that
    identify the point in the result table.  Keeping them separate lets
    a point carry derived run parameters (e.g. Figure 7's per-RTT
    duration) without those leaking into the reported rows.

    ``background`` optionally gives this point its own fluid background
    load (:class:`repro.hybrid.BackgroundLoad` dict form: at least a
    fluid model name and a capacity share), overriding the spec-level
    one.  It is merged into the run kwargs — so the point's cache key
    covers it and hybrid points dedupe like any other job — and echoed
    into the row tags as ``bg_model``/``bg_share`` unless the tags
    already carry those columns.
    """

    overrides: Mapping[str, Any]
    tags: Mapping[str, Any]
    background: Optional[Mapping[str, Any]] = None


@dataclass
class ScenarioSpec:
    """Declarative description of one figure-style dumbbell sweep.

    A spec is the single source of truth an experiment module needs:
    the shared topology/traffic parameters (``base``), the sweep points,
    the schemes to overlay, and the reporting metadata (``columns``,
    ``title``, ``expectation``).  :meth:`run` expands the grid through
    :func:`repro.experiments.sweep.sweep_dumbbell`, which supplies
    process fan-out, caching and crash isolation; rows come back in
    point-major, scheme-minor order, exactly as the historical
    hand-rolled loops produced them.
    """

    name: str
    title: str
    points: List[ScenarioPoint]
    #: ``None`` means the Section 4 comparison set
    schemes: Optional[Sequence[str]] = None
    #: shared ``run_dumbbell`` keyword arguments
    base: Dict[str, Any] = field(default_factory=dict)
    #: table columns for reporting, in display order
    columns: Sequence[str] = ()
    #: the paper's qualitative expectation for this figure
    expectation: str = ""
    #: optional fluid background load applied to every point (dict form
    #: of :class:`repro.hybrid.BackgroundLoad`); a point-level
    #: ``background`` overrides this spec-level one
    background: Optional[Mapping[str, Any]] = None

    def background_for(self, point: ScenarioPoint) -> Optional[Dict[str, Any]]:
        """Effective background spec for *point* (point overrides spec)."""
        bg = point.background if point.background is not None else self.background
        return None if bg is None else dict(bg)

    def kwargs_for(self, point: ScenarioPoint) -> Dict[str, Any]:
        """Full ``run_dumbbell`` kwargs for *point* (base + overrides)."""
        kwargs = dict(self.base)
        kwargs.update(point.overrides)
        bg = self.background_for(point)
        if bg is not None:
            kwargs["background"] = bg
        return kwargs

    def tags_for(self, point: ScenarioPoint) -> Dict[str, Any]:
        """Row tags for *point*, with hybrid points auto-tagged.

        Points carrying a background load gain ``bg_model``/``bg_share``
        columns (unless the point's tags already define them), so hybrid
        rows stay distinguishable in result tables and validation
        metric ids.
        """
        tags = dict(point.tags)
        bg = self.background_for(point)
        if bg is not None:
            tags.setdefault("bg_model", bg.get("model"))
            tags.setdefault("bg_share", bg.get("share"))
        return tags

    def resolved_schemes(self) -> Sequence[str]:
        if self.schemes is not None:
            return tuple(self.schemes)
        from .sweep import SECTION4_SCHEMES  # local: avoids an import cycle
        return SECTION4_SCHEMES

    def run(
        self,
        *,
        workers: Optional[int] = None,
        cache=None,
        timeout: Optional[float] = None,
        retries: int = 1,
        progress=None,
        warm_start: bool = False,
        checkpoint: Optional[float] = None,
        fleet=None,
    ) -> List[Dict]:
        """Run every scheme at every point; returns flattened table rows.

        ``warm_start=True`` shares one simulated warm-up per scheme
        across all points — valid only when the points differ solely in
        ``duration`` (see :func:`repro.experiments.sweep.sweep_dumbbell`).
        ``checkpoint`` enables periodic crash-resume checkpoints in the
        runner's workers (simulated seconds between saves).  ``fleet``
        routes execution through a crash-safe :mod:`repro.fleet`
        directory (path, ``Fleet`` instance, or ``None`` to consult
        ``$REPRO_FLEET``) — see :func:`sweep_dumbbell`.
        """
        from .sweep import sweep_dumbbell  # local: avoids an import cycle

        def point_overrides(p: ScenarioPoint) -> Dict[str, Any]:
            overrides = dict(p.overrides)
            bg = self.background_for(p)
            if bg is not None:
                overrides["background"] = bg
            return overrides

        return sweep_dumbbell(
            [point_overrides(p) for p in self.points],
            schemes=self.resolved_schemes(),
            tags=[self.tags_for(p) for p in self.points],
            workers=workers,
            cache=cache,
            timeout=timeout,
            retries=retries,
            progress=progress,
            warm_start=warm_start,
            checkpoint=checkpoint,
            fleet=fleet,
            **self.base,
        )
