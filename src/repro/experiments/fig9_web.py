"""Figure 9: impact of web (bursty) traffic.

Paper setup: 150 Mbps bottleneck, 60 ms RTT, 50 long flows, web sessions
swept 10 - 1000 (log axis).  Scaled default: 10 Mbps, 8 long flows, 2-32
sessions — the web load fraction of link capacity spans a similar range.

Paper claims: as web load grows, PERT keeps the average queue low and
losses ~zero, like SACK/RED-ECN; PERT utilization slightly below
RED-ECN; long-flow fairness stays high.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .report import format_table
from .scenarios import ScenarioPoint, ScenarioSpec
from .sweep import SECTION4_SCHEMES

__all__ = ["spec", "run", "validation_metrics", "main",
           "DEFAULT_SESSION_COUNTS"]

PAPER_EXPECTATION = (
    "PERT: low queue and ~zero drops at every web load, like RED-ECN; "
    "utilization slightly below RED-ECN; long-flow Jain index high."
)

DEFAULT_SESSION_COUNTS = [2, 4, 8, 16, 32]


def spec(
    session_counts: Optional[Sequence[int]] = None,
    bandwidth: float = 10e6,
    rtt: float = 0.060,
    n_fwd: int = 8,
    duration: float = 40.0,
    warmup: float = 15.0,
    seed: int = 1,
    schemes: Sequence[str] = SECTION4_SCHEMES,
) -> ScenarioSpec:
    """Declarative sweep spec for this figure."""
    session_counts = (
        list(session_counts) if session_counts is not None
        else DEFAULT_SESSION_COUNTS
    )
    points = [
        ScenarioPoint(overrides={"web_sessions": n}, tags={"web_sessions": n})
        for n in session_counts
    ]
    return ScenarioSpec(
        name="fig9_web",
        title="Figure 9 — impact of web traffic",
        points=points,
        schemes=tuple(schemes),
        base=dict(bandwidth=bandwidth, rtt=rtt, n_fwd=n_fwd,
                  duration=duration, warmup=warmup, seed=seed),
        columns=("web_sessions", "scheme", "norm_queue", "drop_rate",
                 "utilization", "jain"),
        expectation=PAPER_EXPECTATION,
    )


def run(
    session_counts: Optional[Sequence[int]] = None,
    bandwidth: float = 10e6,
    rtt: float = 0.060,
    n_fwd: int = 8,
    duration: float = 40.0,
    warmup: float = 15.0,
    seed: int = 1,
    schemes: Sequence[str] = SECTION4_SCHEMES,
) -> List[dict]:
    return spec(session_counts, bandwidth=bandwidth, rtt=rtt, n_fwd=n_fwd,
                duration=duration, warmup=warmup, seed=seed,
                schemes=schemes).run()


def validation_metrics(rows: List[dict]):
    """Flatten :func:`run` output for ``repro.validate`` (per-web-load rows)."""
    from ..validate.extract import rows_to_metrics

    return rows_to_metrics(
        rows, metrics=("norm_queue", "drop_rate", "utilization", "jain"),
        keys=("web_sessions",),
    )


def main() -> None:
    scenario = spec()
    rows = scenario.run()
    print(format_table(rows, list(scenario.columns), title=scenario.title))
    print(f"\nPaper expectation: {scenario.expectation}")


if __name__ == "__main__":
    main()
