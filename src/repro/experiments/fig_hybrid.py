"""Hybrid fluid-packet validation: agreement sweep plus the 10^5-flow run.

Not a paper figure — this validates the :mod:`repro.hybrid` coupling the
paper's Section 5 fluid models make possible.  Two halves:

* **Agreement sweep** (10 - 10^3 total flows): every operating point is
  run twice at the same per-flow bandwidth — pure packet (all N flows
  simulated) and hybrid (a handful of foreground packet flows plus a
  PERT/RED fluid ensemble supplying the remaining capacity share).  If
  the coupling is faithful, queue occupancy, drops and utilization of
  the two runs agree at every overlapping scale.

* **Extreme scale** (10^5 flows): the scenario shape the packet engine
  alone could never run.  16 foreground PERT flows share a bottleneck
  with a fast-forwarded 10^5-flow fluid PERT ensemble (paced
  macro-packet injection), and the foreground flows' fairness and
  queue-delay distribution — derived from a tagged flow's per-ACK RTT
  trace — are the reported deliverable.

The background fluid model uses the *packet* PERT response-curve
parameters (T_min = 5 ms, T_max = 10 ms, p_max = 0.05, 35 % early
decrease), so both engines emulate the same control law.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from .report import format_table
from .scenarios import ScenarioPoint, ScenarioSpec

__all__ = [
    "spec",
    "run",
    "run_extreme",
    "validation_metrics",
    "main",
    "DEFAULT_FLOW_COUNTS",
    "PER_FLOW_BW",
    "foreground_count",
    "background_spec",
]

PAPER_EXPECTATION = (
    "hybrid runs track the pure packet runs' queue/drops/utilization at "
    "every overlapping flow count; at 10^5 flows the foreground PERT "
    "flows stay fair (Jain ~1) with queuing delay near the PERT "
    "response-curve equilibrium (T_max ~ 10 ms), far below droptail."
)

#: total-flow counts of the agreement sweep (log axis, like Figure 8)
DEFAULT_FLOW_COUNTS = [10, 100, 1000]

#: per-flow bottleneck share kept constant as N grows: 0.8 Mbps = 100
#: packets/s per flow at 1000-byte packets, i.e. a per-flow window of
#: ~6 packets at the 60 ms base RTT — the same mid-range operating
#: point the Figure 8 sweep covers
PER_FLOW_BW = 0.8e6

#: fluid-model parameters matching the packet PERT sender's emulated
#: gentle-RED curve (core.config.PertConfig defaults)
MATCHED_PERT_CURVE: Dict[str, Any] = {
    "t_min": 0.005,
    "t_max": 0.010,
    "p_max": 0.05,
    "beta_decrease": 0.35,
    "clamp": True,
}


def foreground_count(n: int) -> int:
    """Packet-level foreground flows for a hybrid run of *n* total flows."""
    return max(4, min(10, n // 2))


def background_spec(n: int, n_fg: int, **extra: Any) -> Dict[str, Any]:
    """Fluid background standing in for the ``n - n_fg`` remaining flows.

    The capacity share equals the replaced flows' fair share, so every
    foreground flow keeps the same per-flow bandwidth as in the pure
    packet run — both engines then sit at the same point of the PERT
    response curve.
    """
    bg: Dict[str, Any] = {
        "model": "pert_red",
        "share": (n - n_fg) / n,
        "n_flows": n - n_fg,
        "params": dict(MATCHED_PERT_CURVE),
    }
    bg.update(extra)
    return bg


def spec(
    flow_counts: Optional[Sequence[int]] = None,
    per_flow_bw: float = PER_FLOW_BW,
    rtt: float = 0.060,
    duration: float = 16.0,
    warmup: float = 6.0,
    seed: int = 1,
) -> ScenarioSpec:
    """Declarative agreement sweep: each flow count run packet and hybrid."""
    flow_counts = (
        list(flow_counts) if flow_counts is not None else DEFAULT_FLOW_COUNTS
    )
    points: List[ScenarioPoint] = []
    for n in flow_counts:
        bandwidth = n * per_flow_bw
        n_fg = foreground_count(n)
        points.append(ScenarioPoint(
            overrides={"n_fwd": n, "bandwidth": bandwidth},
            tags={"mode": "packet", "n": n},
        ))
        points.append(ScenarioPoint(
            overrides={"n_fwd": n_fg, "bandwidth": bandwidth},
            tags={"mode": "hybrid", "n": n},
            background=background_spec(n, n_fg),
        ))
    return ScenarioSpec(
        name="fig_hybrid",
        title="Hybrid engine — fluid background vs pure packet agreement",
        points=points,
        schemes=("pert",),
        base=dict(rtt=rtt, duration=duration, warmup=warmup, seed=seed),
        columns=("mode", "n", "bg_share", "norm_queue", "drop_rate",
                 "utilization", "jain"),
        expectation=PAPER_EXPECTATION,
    )


def run_extreme(
    n_flows: int = 100_000,
    n_fg: int = 16,
    per_flow_bw: float = PER_FLOW_BW,
    rtt: float = 0.060,
    duration: float = 30.0,
    warmup: float = 10.0,
    seed: int = 1,
    pkt_size: int = 1000,
    aggregate: int = 4000,
) -> Dict[str, Any]:
    """The 10^5-flow hybrid scenario; returns one result row.

    The fluid ensemble is fast-forwarded to steady state and injected as
    *paced* macro-packets (``aggregate`` fluid packets per event), so the
    event count is set by the macro rate — about 2.5 k/s here — not by
    the 10^5 flows represented.  A Poisson process would be wrong at
    this share: an open-loop M/D/1 queue at rho ~ 1 grows without bound,
    whereas the real closed-loop aggregate is smooth at this timescale.

    Foreground starts are compressed to the first two RTTs: against a
    background that never yields, the queue stands from the first few
    RTTs on, and a flow arriving later can never observe the base RTT —
    its queuing-delay estimate reads near zero and it stops responding
    (the base-RTT pollution every delay-based scheme shares).  Starting
    while the queue is still empty keeps the minimum-RTT estimate, and
    therefore the fairness measurement, meaningful.
    """
    from ..hybrid import run_hybrid_dumbbell

    bandwidth = n_flows * per_flow_bw
    bg = background_spec(
        n_flows, n_fg, aggregate=aggregate, arrival="paced",
    )
    summary = run_hybrid_dumbbell(
        "pert", bandwidth, bg,
        n_fwd=n_fg, rtt=rtt, duration=duration, warmup=warmup, seed=seed,
        pkt_size=pkt_size, start_window=2.0 * rtt,
    )
    res = summary.result
    return {
        "mode": "hybrid",
        "scheme": "pert",
        "n": n_flows,
        "bg_share": bg["share"],
        "extreme": True,
        "jain": summary.jain,
        "qdelay_ms": summary.qdelay_mean * 1e3,
        "qdelay_p50_ms": summary.qdelay_p50 * 1e3,
        "qdelay_p95_ms": summary.qdelay_p95 * 1e3,
        "utilization": res.utilization,
        "drop_rate": res.drop_rate,
        "norm_queue": res.norm_queue,
        "background_pkts": float(summary.background_pkts),
    }


def run(
    flow_counts: Optional[Sequence[int]] = None,
    per_flow_bw: float = PER_FLOW_BW,
    rtt: float = 0.060,
    duration: float = 16.0,
    warmup: float = 6.0,
    seed: int = 1,
    include_extreme: bool = True,
    extreme_flows: int = 100_000,
    extreme_fg: int = 16,
    extreme_duration: float = 30.0,
    extreme_warmup: float = 10.0,
    extreme_aggregate: int = 4000,
) -> List[dict]:
    """Agreement sweep rows plus (optionally) the extreme-scale row."""
    rows = spec(flow_counts, per_flow_bw=per_flow_bw, rtt=rtt,
                duration=duration, warmup=warmup, seed=seed).run()
    if include_extreme:
        rows.append(run_extreme(
            n_flows=extreme_flows, n_fg=extreme_fg, per_flow_bw=per_flow_bw,
            rtt=rtt, duration=extreme_duration, warmup=extreme_warmup,
            seed=seed, aggregate=extreme_aggregate,
        ))
    return rows


def validation_metrics(rows: List[dict]) -> Dict[str, float]:
    """Flatten :func:`run` output for ``repro.validate``.

    Emits three groups: per-run pins for both engines at every sweep
    point, derived ``agree.*`` packet-vs-hybrid deltas (these carry the
    hand-set agreement bounds in the expected file), and the
    extreme-scale deliverable metrics.
    """
    from ..validate.extract import metric_id, rows_to_metrics

    sweep_rows = [r for r in rows if not r.get("extreme")]
    extreme_rows = [r for r in rows if r.get("extreme")]
    out = rows_to_metrics(
        sweep_rows, metrics=("norm_queue", "drop_rate", "utilization", "jain"),
        keys=("mode", "n"),
    )
    by_point = {
        (r["mode"], r["n"]): r for r in sweep_rows if not r.get("failed")
    }
    for n in sorted({r["n"] for r in sweep_rows}):
        packet = by_point.get(("packet", n))
        hybrid = by_point.get(("hybrid", n))
        if packet is None or hybrid is None:
            continue
        out[metric_id("agree", "queue_ratio", {"n": n})] = (
            hybrid["norm_queue"] / max(packet["norm_queue"], 1e-9)
        )
        out[metric_id("agree", "util_diff", {"n": n})] = (
            hybrid["utilization"] - packet["utilization"]
        )
        out[metric_id("agree", "drop_diff", {"n": n})] = (
            hybrid["drop_rate"] - packet["drop_rate"]
        )
    for r in extreme_rows:
        tags = {"n": r["n"]}
        for m in ("jain", "qdelay_ms", "qdelay_p50_ms", "qdelay_p95_ms",
                  "utilization", "drop_rate"):
            out[metric_id("pert", m, tags)] = float(r[m])
    return out


def main() -> None:
    scenario = spec()
    rows = run()
    sweep_rows = [r for r in rows if not r.get("extreme")]
    print(format_table(sweep_rows, list(scenario.columns),
                       title=scenario.title))
    for r in rows:
        if r.get("extreme"):
            print(
                f"\n10^5-flow hybrid (pert, {r['n']} flows, "
                f"bg share {r['bg_share']:.5f}): "
                f"jain={r['jain']:.4f}  "
                f"qdelay mean/p50/p95 = {r['qdelay_ms']:.2f}/"
                f"{r['qdelay_p50_ms']:.2f}/{r['qdelay_p95_ms']:.2f} ms  "
                f"util={r['utilization']:.3f}  drop={r['drop_rate']:.4f}"
            )
    print(f"\nPaper expectation: {scenario.expectation}")


if __name__ == "__main__":
    main()
