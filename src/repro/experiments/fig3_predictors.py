"""Figure 3: prediction efficiency / false positives / false negatives.

Replays every Section 2 congestion predictor — the classics (CARD,
TRI-S, DUAL, Vegas, CIM) and the paper's own signals (instantaneous RTT
threshold, buffer-sized moving average, EWMA 7/8 and EWMA 0.99) — over
the tagged flow's per-ACK trace and scores each against the *queue-level*
losses using the Figure 1 state machine.

Paper claims to reproduce: Vegas is the best of the classics;
``srtt_0.99`` achieves high efficiency with low false positives *and*
low false negatives, beating both the raw signal (noisy, many false
positives) and EWMA 7/8.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..predictors import (
    CardPredictor,
    CimPredictor,
    DualPredictor,
    EwmaRttPredictor,
    InstantRttPredictor,
    MovingAverageRttPredictor,
    Predictor,
    SyncTcpPredictor,
    TcpBfaPredictor,
    TriSPredictor,
    VegasPredictor,
    score_predictor,
)
from .report import format_table
from .section2 import CaseTrace, TrafficCase, collect_case_trace, default_cases

__all__ = ["predictor_suite", "rows_from_traces", "run", "validation_metrics",
           "main"]

PAPER_EXPECTATION = (
    "srtt_0.99 and the buffer-sized moving average dominate: high "
    "efficiency, low false positives, low false negatives.  Vegas is the "
    "best classic predictor.  The instantaneous signal is aggressive but "
    "noisy (higher false positives)."
)


def predictor_suite(threshold: float, buffer_window: int = 750) -> List[Predictor]:
    """The Figure 3 predictor set, with RTT thresholds where applicable."""
    return [
        CardPredictor(),
        TriSPredictor(),
        DualPredictor(),
        VegasPredictor(beta=3.0),
        CimPredictor(short=8, long=96),
        SyncTcpPredictor(),
        TcpBfaPredictor(),
        InstantRttPredictor(threshold),
        MovingAverageRttPredictor(threshold, window=buffer_window),
        EwmaRttPredictor(threshold, weight=7.0 / 8.0),
        EwmaRttPredictor(threshold, weight=0.99),
    ]


def rows_from_traces(
    traces: Dict[str, CaseTrace], threshold_margin: float = 0.005
) -> List[dict]:
    """Average each predictor's scores over all traffic cases."""
    agg: Dict[str, List] = {}
    for tr in traces.values():
        if not tr.rtt_trace:
            continue
        base = min(r for _, r, _ in tr.rtt_trace)
        threshold = base + threshold_margin
        coalesce = 2.0 * tr.base_rtt
        for pred in predictor_suite(threshold, buffer_window=tr.buffer_pkts):
            counts = score_predictor(pred, tr.rtt_trace, tr.queue_drops,
                                     coalesce=coalesce)
            agg.setdefault(pred.name, []).append(counts)
    rows = []
    for name, counts_list in agg.items():
        n = len(counts_list)
        rows.append(
            {
                "predictor": name,
                "efficiency": sum(c.efficiency for c in counts_list) / n,
                "false_pos": sum(c.false_positive_rate for c in counts_list) / n,
                "false_neg": sum(c.false_negative_rate for c in counts_list) / n,
            }
        )
    return rows


def run(
    cases: Optional[List[TrafficCase]] = None,
    bandwidth: float = 16e6,
    duration: float = 60.0,
    seed: int = 1,
) -> List[dict]:
    cases = cases if cases is not None else default_cases()
    traces = {
        c.name: collect_case_trace(c, bandwidth=bandwidth, duration=duration,
                                   seed=seed)
        for c in cases
    }
    return rows_from_traces(traces)


def validation_metrics(rows: List[dict]) -> Dict[str, float]:
    """Flatten :func:`run` output for ``repro.validate`` (per-predictor scores)."""
    from ..validate.extract import rows_to_metrics

    return rows_to_metrics(
        rows, metrics=("efficiency", "false_pos", "false_neg"),
        prefix_col="predictor",
    )


def main() -> None:
    rows = run()
    print(format_table(rows, ["predictor", "efficiency", "false_pos", "false_neg"],
                       title="Figure 3 — predictor comparison (queue-level losses)"))
    print(f"\nPaper expectation: {PAPER_EXPECTATION}")


if __name__ == "__main__":
    main()
