"""Command-line runner for the paper-reproduction experiments.

Usage::

    python -m repro.experiments list
    python -m repro.experiments fig6 [--scaled]
    python -m repro.experiments all

Each experiment prints the reproduced table next to the paper's
expectation.  ``--scaled`` (default) uses the laptop-scale parameters;
the module-level ``run()`` functions accept full-scale parameters
programmatically.
"""

from __future__ import annotations

import argparse
import sys

from . import (
    fig2_loss_correlation,
    fig3_predictors,
    fig4_false_positive_pdf,
    fig5_response_curve,
    fig6_bandwidth,
    fig7_rtt,
    fig8_nflows,
    fig9_web,
    fig11_multibottleneck,
    fig12_dynamics,
    fig12b_cbr_dynamics,
    fig13_fluid,
    fig14_pert_pi,
    table1_rtts,
)

EXPERIMENTS = {
    "fig2": fig2_loss_correlation,
    "fig3": fig3_predictors,
    "fig4": fig4_false_positive_pdf,
    "fig5": fig5_response_curve,
    "fig6": fig6_bandwidth,
    "fig7": fig7_rtt,
    "fig8": fig8_nflows,
    "fig9": fig9_web,
    "table1": table1_rtts,
    "fig11": fig11_multibottleneck,
    "fig12": fig12_dynamics,
    "fig12b": fig12b_cbr_dynamics,
    "fig13": fig13_fluid,
    "fig14": fig14_pert_pi,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce a table/figure from the PERT paper.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["list", "all"],
        help="experiment id (e.g. fig6, table1), 'list', or 'all'",
    )
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name, mod in sorted(EXPERIMENTS.items()):
            doc = (mod.__doc__ or "").strip().splitlines()[0]
            print(f"{name:8s} {doc}")
        return 0

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        print(f"=== {name} " + "=" * max(0, 60 - len(name)))
        EXPERIMENTS[name].main()
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
