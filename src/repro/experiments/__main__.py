"""Command-line runner for the paper-reproduction experiments.

Usage::

    python -m repro.experiments list
    python -m repro.experiments fig6 [--workers N] [--no-cache]
    python -m repro.experiments all -j 8 --progress
    python -m repro.experiments report      # paper-fidelity verdict

Each experiment prints the reproduced table next to the paper's
expectation.  Grid-shaped experiments execute through
:mod:`repro.runner`: ``--workers`` fans simulation jobs out over worker
processes (default: one per CPU) and results are cached on disk
(``~/.cache/repro`` or ``$REPRO_CACHE_DIR``) so a re-run only simulates
changed points.  ``--workers 0`` forces the serial in-process path for
debugging.  The module-level ``run()`` functions accept full-scale
parameters programmatically.
"""

from __future__ import annotations

import argparse
import contextlib
import os
import sys
from pathlib import Path
from typing import Dict, Iterator, Optional

from . import (
    fig2_loss_correlation,
    fig3_predictors,
    fig4_false_positive_pdf,
    fig5_response_curve,
    fig6_bandwidth,
    fig7_rtt,
    fig8_nflows,
    fig9_web,
    fig11_multibottleneck,
    fig12_dynamics,
    fig12b_cbr_dynamics,
    fig13_fluid,
    fig14_pert_pi,
    fig_hybrid,
    table1_rtts,
)

EXPERIMENTS = {
    "fig2": fig2_loss_correlation,
    "fig3": fig3_predictors,
    "fig4": fig4_false_positive_pdf,
    "fig5": fig5_response_curve,
    "fig6": fig6_bandwidth,
    "fig7": fig7_rtt,
    "fig8": fig8_nflows,
    "fig9": fig9_web,
    "table1": table1_rtts,
    "fig11": fig11_multibottleneck,
    "fig12": fig12_dynamics,
    "fig12b": fig12b_cbr_dynamics,
    "fig13": fig13_fluid,
    "fig14": fig14_pert_pi,
    "fig_hybrid": fig_hybrid,
}


@contextlib.contextmanager
def _scoped_env(updates: Dict[str, Optional[str]]) -> Iterator[None]:
    """Apply environment overrides for the duration of the run only."""
    saved = {k: os.environ.get(k) for k in updates}
    try:
        for k, v in updates.items():
            if v is None:
                os.environ.pop(k, None)
            else:
                os.environ[k] = v
        yield
    finally:
        for k, v in saved.items():
            if v is None:
                os.environ.pop(k, None)
            else:
                os.environ[k] = v


def _runner_env(args) -> Dict[str, Optional[str]]:
    """Translate CLI flags into the runner's environment knobs."""
    env: Dict[str, Optional[str]] = {}
    if args.workers is not None:
        env["REPRO_WORKERS"] = str(args.workers)
    elif "REPRO_WORKERS" not in os.environ:
        env["REPRO_WORKERS"] = str(os.cpu_count() or 1)
    if args.no_cache:
        env["REPRO_CACHE"] = "0"
    if args.cache_dir:
        env["REPRO_CACHE_DIR"] = args.cache_dir
    if args.progress:
        env["REPRO_PROGRESS"] = "1"
    if args.obs:
        env["REPRO_OBS"] = "1"
    if args.trace:
        env["REPRO_TRACE"] = "1"
    if args.profile:
        env["REPRO_PROFILE"] = "1"
    if args.fleet:
        env["REPRO_FLEET"] = args.fleet
    if args.serve or _env_truthy("REPRO_SERVE"):
        # The dashboard tails the bus file next to the cache entries.
        env.setdefault("REPRO_BUS", "1")
    return env


def _env_truthy(name: str) -> bool:
    """Is the env var set to something other than off/0/false/no?"""
    return os.environ.get(name, "").strip().lower() not in (
        "", "0", "false", "no", "off"
    )


def _maybe_serve(args):
    """Start the background dashboard when ``--serve``/``REPRO_SERVE`` asks.

    Returns the server (caller shuts it down) or ``None``.  The server
    watches the run's cache directory — the same place the bus file and
    manifests land — and dies with the process at the latest.
    """
    if not (args.serve or _env_truthy("REPRO_SERVE")):
        return None
    from ..runner.cache import default_cache_dir
    from ..serve import serve_in_background

    if args.fleet or os.environ.get("REPRO_FLEET", "").strip():
        # Fleeted runs put the bus (and fleet_* events) in the fleet dir.
        run_dir = Path(args.fleet or os.environ["REPRO_FLEET"])
    elif args.cache_dir:
        run_dir = Path(args.cache_dir)
    else:
        run_dir = default_cache_dir()
    run_dir.mkdir(parents=True, exist_ok=True)
    server, url = serve_in_background(run_dir)
    print(f"dashboard: {url}  (watching {run_dir})")
    return server


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce a table/figure from the PERT paper.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["list", "all", "report"],
        help="experiment id (e.g. fig6, table1), 'list', 'all', or "
             "'report' (paper-fidelity verdict via repro.validate)",
    )
    parser.add_argument(
        "-j", "--workers", type=int, default=None, metavar="N",
        help="worker processes for grid experiments "
             "(default: $REPRO_WORKERS or one per CPU; 0 = serial)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the on-disk result cache for this run",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="cache directory (default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    parser.add_argument(
        "--progress", action="store_true",
        help="log per-job runner progress (jobs done/cached/failed, events/s)",
    )
    parser.add_argument(
        "--obs", action="store_true",
        help="collect in-sim metrics; each fresh job writes a run manifest "
             "next to its cache entry (read by 'python -m repro.obs report')",
    )
    parser.add_argument(
        "--trace", action="store_true",
        help="also write a schema-versioned JSONL event trace per fresh job "
             "(implies --obs)",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="sample event-callback timings in each job (adds a 'profile' "
             "section to manifests; slows the run)",
    )
    parser.add_argument(
        "--fleet", default=None, metavar="DIR",
        help="run grid experiments through a crash-safe fleet directory "
             "(python -m repro.fleet): sweeps are journaled, killed runs "
             "resume with zero recomputation (also via $REPRO_FLEET)",
    )
    parser.add_argument(
        "--serve", action="store_true",
        help="start the live dashboard (python -m repro.serve) on the cache "
             "dir for the duration of the run; implies the REPRO_BUS event "
             "bus (also via $REPRO_SERVE)",
    )
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name, mod in sorted(EXPERIMENTS.items()):
            doc = (mod.__doc__ or "").strip().splitlines()[0]
            print(f"{name:8s} {doc}")
        print("\nhow close is each figure to the paper?  "
              "`python -m repro.experiments report` (or "
              "`python -m repro.validate run --quick`)")
        return 0

    if args.experiment == "report":
        # Measured-vs-paper comparison lives in the validation subsystem.
        from ..validate.__main__ import main as validate_main

        return validate_main(["report"])

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    with _scoped_env(_runner_env(args)):
        server = _maybe_serve(args)
        try:
            for name in names:
                print(f"=== {name} " + "=" * max(0, 60 - len(name)))
                EXPERIMENTS[name].main()
                print()
        finally:
            if server is not None:
                server.shutdown()
                server.server_close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
