"""Seed-sweep robustness: do the paper's conclusions survive reseeding?

Every benchmark in this repository runs one seed per point (the
simulations are deterministic).  This module re-runs a comparison over
several seeds and reports per-metric means and standard deviations, so
the headline orderings (e.g. "PERT's queue is below DropTail's") can be
asserted *for every seed* rather than for one lucky draw.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from ..metrics.stats import mean, stdev
from .common import run_dumbbell
from .report import format_table

__all__ = ["seed_sweep", "summarize_sweep", "main"]

METRICS = ("norm_queue", "drop_rate", "utilization", "jain")


def seed_sweep(
    schemes: Sequence[str],
    seeds: Iterable[int] = (1, 2, 3),
    **run_kwargs,
) -> Dict[str, List[Dict]]:
    """Run each scheme once per seed; returns scheme -> list of metric rows."""
    out: Dict[str, List[Dict]] = {}
    for scheme in schemes:
        rows = []
        for seed in seeds:
            r = run_dumbbell(scheme, seed=seed, **run_kwargs)
            rows.append({m: getattr(r, m) for m in METRICS} | {"seed": seed})
        out[scheme] = rows
    return out


def summarize_sweep(sweep: Dict[str, List[Dict]]) -> List[Dict]:
    """Mean and stdev per scheme per metric, flattened to table rows."""
    rows = []
    for scheme, samples in sweep.items():
        row: Dict = {"scheme": scheme, "seeds": len(samples)}
        for m in METRICS:
            vals = [s[m] for s in samples]
            row[f"{m}_mean"] = mean(vals)
            row[f"{m}_std"] = stdev(vals)
        rows.append(row)
    return rows


def main() -> None:
    sweep = seed_sweep(
        ("pert", "sack-droptail", "sack-red-ecn", "vegas"),
        seeds=(1, 2, 3),
        bandwidth=10e6, rtt=0.06, n_fwd=8, web_sessions=3,
        duration=40.0, warmup=15.0,
    )
    rows = summarize_sweep(sweep)
    print(format_table(
        rows,
        ["scheme", "seeds", "norm_queue_mean", "norm_queue_std",
         "drop_rate_mean", "utilization_mean", "jain_mean"],
        title="Seed-sweep robustness (3 seeds per scheme)",
    ))


if __name__ == "__main__":
    main()
