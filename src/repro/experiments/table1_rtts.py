"""Table 1: flows with heterogeneous RTTs sharing one bottleneck.

Paper setup: 150 Mbps bottleneck shared by 10 flows with end-to-end
delays 12, 24, ..., 120 ms, plus 100 background web sessions; report
normalized queue Q, drop rate p, utilization U and Jain index F.

Paper numbers (Table 1):

    scheme          Q      p          U      F
    PERT            0.28   3.98e-06   93.81  0.86
    SACK/DropTail   0.42   7.18e-04   93.77  0.44
    SACK/RED-ECN    0.41   4.95e-04   93.90  0.51
    Vegas           0.07   0          99.99  0.98

Key qualitative claims: PERT (and Vegas) sharply reduce TCP's RTT
unfairness (F well above the loss-based stacks); PERT's queue and drops
sit below both SACK baselines at comparable utilization.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..runner import dumbbell_spec, run_jobs
from .report import format_table
from .sweep import SECTION4_SCHEMES, failed_row, result_row

__all__ = ["run", "validation_metrics", "main", "PAPER_TABLE"]

PAPER_TABLE = {
    "pert": {"Q": 0.28, "p": 3.98e-06, "U": 0.9381, "F": 0.86},
    "sack-droptail": {"Q": 0.42, "p": 7.18e-04, "U": 0.9377, "F": 0.44},
    "sack-red-ecn": {"Q": 0.41, "p": 4.95e-04, "U": 0.9390, "F": 0.51},
    "vegas": {"Q": 0.07, "p": 0.0, "U": 0.9999, "F": 0.98},
}

PAPER_EXPECTATION = (
    "PERT and Vegas reduce RTT unfairness (Jain index well above the "
    "SACK baselines); PERT queue/drops below both SACK variants."
)


def default_rtts(n_flows: int = 10) -> List[float]:
    """The paper's 12, 24, ..., 120 ms end-to-end delays."""
    return [0.012 * (i + 1) for i in range(n_flows)]


def run(
    bandwidth: float = 16e6,
    n_fwd: int = 10,
    web_sessions: int = 10,
    duration: float = 60.0,
    warmup: float = 20.0,
    seed: int = 1,
    schemes: Sequence[str] = SECTION4_SCHEMES,
    rtts: Optional[List[float]] = None,
    workers: Optional[int] = None,
    cache=None,
    timeout: Optional[float] = None,
    retries: int = 1,
    progress=None,
) -> List[dict]:
    rtts = rtts if rtts is not None else default_rtts(n_fwd)
    schemes = tuple(schemes)
    specs = [
        dumbbell_spec(
            scheme,
            bandwidth=bandwidth,
            n_fwd=n_fwd,
            rtts=rtts,
            web_sessions=web_sessions,
            duration=duration,
            warmup=warmup,
            seed=seed,
        )
        for scheme in schemes
    ]
    results = run_jobs(
        specs, workers=workers, cache=cache, timeout=timeout,
        retries=retries, progress=progress,
    )
    rows = []
    for scheme, res in zip(schemes, results):
        if res.ok:
            row = result_row(res.value, {})
        else:
            row = failed_row(scheme, {}, res.error)
        paper = PAPER_TABLE.get(scheme, {})
        row["paper_Q"] = paper.get("Q", "")
        row["paper_F"] = paper.get("F", "")
        rows.append(row)
    return rows


def validation_metrics(rows: List[dict]):
    """Flatten :func:`run` output for ``repro.validate`` (per-scheme Q/p/U/F)."""
    from ..validate.extract import rows_to_metrics

    return rows_to_metrics(
        rows, metrics=("norm_queue", "drop_rate", "utilization", "jain"),
    )


def main() -> None:
    rows = run()
    print(format_table(
        rows,
        ["scheme", "norm_queue", "paper_Q", "drop_rate", "utilization",
         "jain", "paper_F"],
        title="Table 1 — heterogeneous RTTs (12..120 ms)",
    ))
    print(f"\nPaper expectation: {PAPER_EXPECTATION}")


if __name__ == "__main__":
    main()
