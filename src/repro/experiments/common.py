"""Shared experiment harness: the paper's dumbbell methodology.

One call to :func:`run_dumbbell` reproduces one data point of the
Section 4 figures: build the single-bottleneck topology, start long-term
flows (optionally in both directions) plus web sessions, run past a
warm-up period, and measure — over the steady-state window only, as the
paper does — the four headline metrics:

* normalized average bottleneck queue length,
* bottleneck drop rate,
* bottleneck utilization,
* Jain fairness index of the forward long-term flows' goodputs.

The paper's buffer-sizing rule is applied: buffer = bandwidth-delay
product, with a floor of twice the number of flows.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..metrics.fairness import jain_index
from ..obs import runtime as obs_runtime
from ..sim.engine import Simulator
from ..sim.monitors import DropLog, LinkWindow, QueueSampler
from ..sim.topology import Dumbbell
from ..tcp.base import TcpSender, TcpSink, connect_flow
from ..traffic.web import start_web_sessions
from .scenarios import Scheme, get_scheme, scheme_sender_kwargs

__all__ = ["DumbbellResult", "run_dumbbell", "access_delays_for_rtts", "bdp_packets"]

#: generous FIFO for access links and the reverse bottleneck direction
_ACCESS_BUFFER = 5000


def bdp_packets(bandwidth_bps: float, rtt: float, pkt_size: int) -> int:
    """Bandwidth-delay product in packets (at least 1)."""
    return max(1, int(round(bandwidth_bps * rtt / (8.0 * pkt_size))))


def access_delays_for_rtts(
    rtts: List[float], bottleneck_delay: float
) -> List[float]:
    """Per-host access delay so flow i's two-way propagation is rtts[i].

    One-way path = access + bottleneck + access, with the two access
    links sharing the remaining budget equally.
    """
    delays = []
    for rtt in rtts:
        residual = rtt / 2.0 - bottleneck_delay
        if residual <= 0:
            raise ValueError(
                f"rtt {rtt} too small for bottleneck delay {bottleneck_delay}"
            )
        delays.append(residual / 2.0)
    return delays


@dataclass
class DumbbellResult:
    """Steady-state metrics of one dumbbell run."""

    scheme: str
    bandwidth: float
    rtt: float
    n_fwd: int
    n_rev: int
    web_sessions: int
    buffer_pkts: int
    mean_queue_pkts: float
    norm_queue: float
    drop_rate: float
    mark_rate: float
    utilization: float
    jain: float
    flow_goodputs_bps: List[float] = field(default_factory=list)
    early_responses: int = 0
    timeouts: int = 0
    events_processed: int = 0
    extras: Dict = field(default_factory=dict)


def run_dumbbell(
    scheme: str,
    bandwidth: float,
    rtt: float = 0.060,
    n_fwd: int = 10,
    n_rev: int = 0,
    web_sessions: int = 0,
    duration: float = 60.0,
    warmup: float = 20.0,
    seed: int = 1,
    pkt_size: int = 1000,
    buffer_pkts: Optional[int] = None,
    rtts: Optional[List[float]] = None,
    start_window: Optional[float] = None,
    record_rtt_flow: Optional[int] = None,
    queue_sample_interval: float = 0.02,
    keep_refs: bool = False,
    collector=None,
) -> DumbbellResult:
    """Run one dumbbell experiment point and return steady-state metrics.

    Parameters
    ----------
    scheme:
        Name from :data:`repro.experiments.scenarios.SCHEMES`.
    bandwidth, rtt:
        Bottleneck bandwidth (bps) and the flows' two-way propagation
        delay (seconds).  ``rtts`` (one per forward flow) overrides
        ``rtt`` for heterogeneous-RTT experiments (Table 1).
    n_fwd, n_rev:
        Long-lived flows in the forward / reverse direction.
    web_sessions:
        Background web sessions sharing the forward bottleneck.
    duration, warmup:
        Total simulated seconds and the measurement-window start.
    buffer_pkts:
        Bottleneck buffer; defaults to the paper's rule (BDP with a floor
        of twice the flow count).
    record_rtt_flow:
        Forward-flow index whose per-ACK RTT trace and loss events are
        retained (``extras["rtt_trace"]``, ``extras["flow_losses"]``,
        plus a fine-grained queue sampler in ``extras["queue_sampler"]``).
    keep_refs:
        Also return live simulator objects in ``extras`` (for tests).
    collector:
        Optional :class:`repro.obs.Collector` to attach to the
        bottleneck queues, link and senders.  ``None`` uses the active
        job observation's collector (if the runner enabled one); pass
        ``False`` to force observability off.  Attachment is passive —
        results are identical with or without a collector.
    """
    spec: Scheme = get_scheme(scheme)
    if collector is None:
        collector = obs_runtime.active_collector()
    elif collector is False:
        collector = None
    if rtts is not None and len(rtts) != n_fwd:
        raise ValueError("rtts must have one entry per forward flow")
    flow_rtts = rtts if rtts is not None else [rtt] * max(n_fwd, 1)
    base_rtt = min(flow_rtts)
    # The paper sizes the buffer to the bandwidth-delay product; with
    # heterogeneous RTTs we use the mean RTT as the representative delay.
    mean_rtt = sum(flow_rtts) / len(flow_rtts)
    if buffer_pkts is None:
        buffer_pkts = max(
            bdp_packets(bandwidth, mean_rtt, pkt_size), 2 * max(1, n_fwd), 8
        )
    n_hosts = max(n_fwd, n_rev, 1) + 1  # +1 pair reserved for web traffic
    bottleneck_delay = base_rtt / 2.0 * 0.5
    fwd_access = access_delays_for_rtts(flow_rtts, bottleneck_delay)
    # pad access-delay lists up to the host count
    pad = [fwd_access[0] if fwd_access else 1e-3]
    left_delays = (fwd_access + pad * n_hosts)[:n_hosts]
    right_delays = list(left_delays)

    _setup_t0 = time.monotonic()
    sim = Simulator(seed=seed)
    sim.profiler = obs_runtime.active_profiler()
    sender_kwargs = scheme_sender_kwargs(spec, bandwidth, pkt_size, n_fwd, base_rtt)

    def fwd_qdisc():
        return spec.make_qdisc(sim, buffer_pkts, bandwidth, pkt_size, n_fwd, base_rtt)

    def rev_qdisc():
        # The bottleneck is symmetric: reverse-direction data (and the
        # forward flows' ACKs) see the same buffer and discipline.
        return spec.make_qdisc(sim, buffer_pkts, bandwidth, pkt_size, n_rev, base_rtt)

    db = Dumbbell(
        sim,
        n_left=n_hosts,
        n_right=n_hosts,
        bottleneck_bw=bandwidth,
        bottleneck_delay=bottleneck_delay,
        qdisc_fwd=fwd_qdisc,
        qdisc_rev=rev_qdisc,
        access_delays_left=left_delays,
        access_delays_right=right_delays,
    )

    flow_ids = itertools.count()
    start_window = start_window if start_window is not None else min(5.0, warmup / 2.0)
    rng = sim.stream("starts")

    fwd_flows: List[Tuple[TcpSender, TcpSink]] = []
    for i in range(n_fwd):
        fid = next(flow_ids)
        sender, sink = connect_flow(
            sim, db.left[i], db.right[i], flow_id=fid, sender_cls=spec.sender_cls,
            pkt_size=pkt_size, record_rtt=(record_rtt_flow == i), **sender_kwargs,
        )
        sender.start(at=rng.uniform(0.0, start_window))
        fwd_flows.append((sender, sink))
    rev_flows: List[Tuple[TcpSender, TcpSink]] = []
    for i in range(n_rev):
        fid = next(flow_ids)
        sender, sink = connect_flow(
            sim, db.right[i], db.left[i], flow_id=fid, sender_cls=spec.sender_cls,
            pkt_size=pkt_size, **sender_kwargs,
        )
        sender.start(at=rng.uniform(0.0, start_window))
        rev_flows.append((sender, sink))

    if web_sessions > 0:
        start_web_sessions(
            sim,
            web_sessions,
            server=db.left[n_hosts - 1],
            client=db.right[n_hosts - 1],
            flow_ids=flow_ids,
            rng=sim.stream("web-starts"),
            start_window=start_window,
            sender_cls=spec.sender_cls,
            pkt_size=pkt_size,
            **sender_kwargs,
        )

    window = LinkWindow(sim, db.fwd)
    drop_log = DropLog(db.bottleneck_queue)
    sampler = QueueSampler(
        sim, db.bottleneck_queue,
        interval=queue_sample_interval if record_rtt_flow is None else 0.005,
    )

    if collector is not None:
        collector.attach_queue(db.bottleneck_queue, "bottleneck.fwd", bandwidth=bandwidth)
        collector.attach_queue(db.rev.qdisc, "bottleneck.rev", bandwidth=bandwidth)
        collector.attach_link(db.fwd, "bottleneck.fwd")
        for sender, _ in fwd_flows + rev_flows:
            collector.attach_sender(sender)

    _active = obs_runtime.active()
    if _active is not None:
        _active.add_phase("setup", time.monotonic() - _setup_t0)

    with obs_runtime.phase("warmup"):
        sim.run(until=warmup)
    window.open()
    goodput0 = [sink.rcv_next for _, sink in fwd_flows]
    with obs_runtime.phase("measure"):
        sim.run(until=duration)
    window.close()
    if collector is not None:
        collector.finalize(sim)

    span = duration - warmup
    goodputs = [
        (sink.rcv_next - g0) * pkt_size * 8.0 / span
        for (_, sink), g0 in zip(fwd_flows, goodput0)
    ]
    mean_q = sampler.mean(start=warmup, end=duration)
    result = DumbbellResult(
        scheme=scheme,
        bandwidth=bandwidth,
        rtt=base_rtt,
        n_fwd=n_fwd,
        n_rev=n_rev,
        web_sessions=web_sessions,
        buffer_pkts=buffer_pkts,
        mean_queue_pkts=mean_q,
        norm_queue=mean_q / buffer_pkts,
        drop_rate=window.drop_rate,
        mark_rate=window.mark_rate,
        utilization=window.utilization,
        jain=jain_index(goodputs) if goodputs else 0.0,
        flow_goodputs_bps=goodputs,
        early_responses=sum(
            getattr(s, "early_responses", 0) for s, _ in fwd_flows + rev_flows
        ),
        timeouts=sum(s.timeouts for s, _ in fwd_flows + rev_flows),
        events_processed=sim.events_processed,
    )
    if record_rtt_flow is not None:
        tagged = fwd_flows[record_rtt_flow][0]
        result.extras["rtt_trace"] = tagged.rtt_trace
        result.extras["flow_losses"] = tagged.loss_events
        result.extras["queue_drops"] = drop_log.times()
        result.extras["queue_sampler"] = sampler
        result.extras["queue_stats"] = db.bottleneck_queue.stats
    if keep_refs:
        result.extras["sim"] = sim
        result.extras["dumbbell"] = db
        result.extras["fwd_flows"] = fwd_flows
        result.extras["rev_flows"] = rev_flows
    return result
