"""Shared experiment harness: the paper's dumbbell methodology.

One call to :func:`run_dumbbell` reproduces one data point of the
Section 4 figures: build the single-bottleneck topology, start long-term
flows (optionally in both directions) plus web sessions, run past a
warm-up period, and measure — over the steady-state window only, as the
paper does — the four headline metrics:

* normalized average bottleneck queue length,
* bottleneck drop rate,
* bottleneck utilization,
* Jain fairness index of the forward long-term flows' goodputs.

The paper's buffer-sizing rule is applied: buffer = bandwidth-delay
product, with a floor of twice the number of flows.

The run is phased — resolve parameters, build, warm up, measure — with
the live objects carried between phases in a :class:`_DumbbellState`.
That split is what makes runs checkpointable: when the executor installs
a checkpoint slot (:mod:`repro.snapshot.runtime`), the state object is
snapshotted together with the simulator at periodic boundaries, and a
retried attempt resumes from the last checkpoint instead of starting
over.  Because ``sim.run(until=...)`` chunking is bit-identical to a
single call, a resumed run produces exactly the result an uninterrupted
one would (pinned by the resume goldens in ``tests/snapshot``).  The
same split powers warm-started sweeps: :func:`warm_dumbbell_bytes`
captures the state right after warm-up and
:func:`run_dumbbell_warm` measures any number of divergent durations
from clones of it.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..metrics.fairness import jain_index
from ..obs import runtime as obs_runtime
from ..sim.engine import Simulator
from ..sim.monitors import DropLog, LinkWindow, QueueSampler
from ..sim.topology import Dumbbell, make_topology
from ..snapshot import runtime as snapshot_runtime
from ..snapshot.core import capture_bytes, restore_bytes
from ..tcp.base import TcpSender, TcpSink, connect_flow
from ..traffic.web import start_web_sessions
from .scenarios import Scheme, get_scheme, scheme_sender_kwargs

__all__ = [
    "DumbbellResult",
    "run_dumbbell",
    "warm_dumbbell_bytes",
    "run_dumbbell_warm",
    "access_delays_for_rtts",
    "bdp_packets",
]

#: generous FIFO for access links and the reverse bottleneck direction
_ACCESS_BUFFER = 5000


def bdp_packets(bandwidth_bps: float, rtt: float, pkt_size: int) -> int:
    """Bandwidth-delay product in packets (at least 1)."""
    return max(1, int(round(bandwidth_bps * rtt / (8.0 * pkt_size))))


def access_delays_for_rtts(
    rtts: List[float], bottleneck_delay: float
) -> List[float]:
    """Per-host access delay so flow i's two-way propagation is rtts[i].

    One-way path = access + bottleneck + access, with the two access
    links sharing the remaining budget equally.
    """
    delays = []
    for rtt in rtts:
        residual = rtt / 2.0 - bottleneck_delay
        if residual <= 0:
            raise ValueError(
                f"rtt {rtt} too small for bottleneck delay {bottleneck_delay}"
            )
        delays.append(residual / 2.0)
    return delays


@dataclass
class DumbbellResult:
    """Steady-state metrics of one dumbbell run."""

    scheme: str
    bandwidth: float
    rtt: float
    n_fwd: int
    n_rev: int
    web_sessions: int
    buffer_pkts: int
    mean_queue_pkts: float
    norm_queue: float
    drop_rate: float
    mark_rate: float
    utilization: float
    jain: float
    flow_goodputs_bps: List[float] = field(default_factory=list)
    early_responses: int = 0
    timeouts: int = 0
    events_processed: int = 0
    #: fluid background coupling (hybrid runs; see :mod:`repro.hybrid`)
    background_model: Optional[str] = None
    background_share: float = 0.0
    background_pkts: int = 0
    extras: Dict = field(default_factory=dict)


def run_dumbbell(
    scheme: str,
    bandwidth: float,
    rtt: float = 0.060,
    n_fwd: int = 10,
    n_rev: int = 0,
    web_sessions: int = 0,
    duration: float = 60.0,
    warmup: float = 20.0,
    seed: int = 1,
    pkt_size: int = 1000,
    buffer_pkts: Optional[int] = None,
    rtts: Optional[List[float]] = None,
    start_window: Optional[float] = None,
    record_rtt_flow: Optional[int] = None,
    queue_sample_interval: float = 0.02,
    background=None,
    keep_refs: bool = False,
    collector=None,
) -> DumbbellResult:
    """Run one dumbbell experiment point and return steady-state metrics.

    Parameters
    ----------
    scheme:
        Name from :data:`repro.experiments.scenarios.SCHEMES`.
    bandwidth, rtt:
        Bottleneck bandwidth (bps) and the flows' two-way propagation
        delay (seconds).  ``rtts`` (one per forward flow) overrides
        ``rtt`` for heterogeneous-RTT experiments (Table 1).
    n_fwd, n_rev:
        Long-lived flows in the forward / reverse direction.
    web_sessions:
        Background web sessions sharing the forward bottleneck.
    duration, warmup:
        Total simulated seconds and the measurement-window start.
    buffer_pkts:
        Bottleneck buffer; defaults to the paper's rule (BDP with a floor
        of twice the flow count).
    record_rtt_flow:
        Forward-flow index whose per-ACK RTT trace and loss events are
        retained (``extras["rtt_trace"]``, ``extras["flow_losses"]``,
        plus a fine-grained queue sampler in ``extras["queue_sampler"]``).
    background:
        Optional fluid-driven background load at the bottleneck — a
        :class:`repro.hybrid.BackgroundLoad` or its dict form (see
        :mod:`repro.hybrid`).  ``None`` or a zero ``share`` runs the
        pure packet experiment, bit-identically to omitting the
        argument.
    keep_refs:
        Also return live simulator objects in ``extras`` (for tests).
    collector:
        Optional :class:`repro.obs.Collector` to attach to the
        bottleneck queues, link and senders.  ``None`` uses the active
        job observation's collector (if the runner enabled one); pass
        ``False`` to force observability off.  Attachment is passive —
        results are identical with or without a collector.  On a
        checkpoint resume, the restored run keeps the collector it was
        built with.
    """
    params = _resolve_params(
        scheme=scheme, bandwidth=bandwidth, rtt=rtt, n_fwd=n_fwd, n_rev=n_rev,
        web_sessions=web_sessions, duration=duration, warmup=warmup, seed=seed,
        pkt_size=pkt_size, buffer_pkts=buffer_pkts, rtts=rtts,
        start_window=start_window, record_rtt_flow=record_rtt_flow,
        queue_sample_interval=queue_sample_interval, background=background,
    )
    if collector is None:
        collector = obs_runtime.active_collector()
    elif collector is False:
        collector = None

    ckpt = snapshot_runtime.active_checkpoint()
    state = _resume_or_build(params, collector, ckpt)
    _warm_dumbbell(state, ckpt)
    _measure_dumbbell(state, ckpt)
    return _dumbbell_result(state, keep_refs=keep_refs)


# ----------------------------------------------------------------------
# the phased machinery behind run_dumbbell
# ----------------------------------------------------------------------
@dataclass
class _DumbbellState:
    """Everything a dumbbell run carries between phases.

    This is exactly the harness state a checkpoint captures alongside
    the simulator: the resolved identifying parameters (so a resumed
    attempt can refuse a checkpoint written by a different run) plus the
    live topology, flows, monitors and baselines the measure phase
    needs.  ``goodput0 is None`` doubles as "the measurement window has
    not opened yet".
    """

    params: Dict[str, Any]
    sim: Simulator
    db: Dumbbell
    fwd_flows: List[Tuple[TcpSender, TcpSink]]
    rev_flows: List[Tuple[TcpSender, TcpSink]]
    window: LinkWindow
    drop_log: DropLog
    sampler: QueueSampler
    collector: Any = None
    goodput0: Optional[List[int]] = None
    #: live fluid-background injector (None for pure packet runs)
    bg_source: Any = None


def _resolve_params(
    *, scheme, bandwidth, rtt, n_fwd, n_rev, web_sessions, duration, warmup,
    seed, pkt_size, buffer_pkts, rtts, start_window, record_rtt_flow,
    queue_sample_interval, background=None,
) -> Dict[str, Any]:
    """Validate and resolve the run parameters into their canonical form.

    The resolved dict fully determines the simulation, so it is also the
    identity a checkpoint resume compares against.
    """
    get_scheme(scheme)  # fail fast on unknown names
    if rtts is not None and len(rtts) != n_fwd:
        raise ValueError("rtts must have one entry per forward flow")
    flow_rtts = list(rtts) if rtts is not None else [rtt] * max(n_fwd, 1)
    base_rtt = min(flow_rtts)
    # The paper sizes the buffer to the bandwidth-delay product; with
    # heterogeneous RTTs we use the mean RTT as the representative delay.
    mean_rtt = sum(flow_rtts) / len(flow_rtts)
    if buffer_pkts is None:
        buffer_pkts = max(
            bdp_packets(bandwidth, mean_rtt, pkt_size), 2 * max(1, n_fwd), 8
        )
    if start_window is None:
        start_window = min(5.0, warmup / 2.0)
    # Normalise the background spec; a zero share collapses to None so
    # the resolved params (and therefore the build) are bit-identical
    # to a run that never mentioned a background at all.
    from ..hybrid.background import BackgroundLoad  # local: avoids a cycle

    bg = BackgroundLoad.from_spec(background)
    return dict(
        scheme=scheme,
        bandwidth=bandwidth,
        flow_rtts=flow_rtts,
        base_rtt=base_rtt,
        n_fwd=n_fwd,
        n_rev=n_rev,
        web_sessions=web_sessions,
        duration=duration,
        warmup=warmup,
        seed=seed,
        pkt_size=pkt_size,
        buffer_pkts=buffer_pkts,
        start_window=start_window,
        record_rtt_flow=record_rtt_flow,
        queue_sample_interval=queue_sample_interval,
        background=None if bg is None else bg.canonical(),
    )


def _build_dumbbell(params: Dict[str, Any], collector) -> _DumbbellState:
    """Construct topology, flows, traffic and monitors for *params*.

    The construction order below is load-bearing: components claim RNG
    streams and event sequence numbers as they are built, so any
    reordering changes the simulation.  Checkpoint/warm-start correctness
    relies on this function being a pure function of *params*.
    """
    spec: Scheme = get_scheme(params["scheme"])
    bandwidth = params["bandwidth"]
    pkt_size = params["pkt_size"]
    n_fwd, n_rev = params["n_fwd"], params["n_rev"]
    base_rtt = params["base_rtt"]
    buffer_pkts = params["buffer_pkts"]
    start_window = params["start_window"]
    record_rtt_flow = params["record_rtt_flow"]

    n_hosts = max(n_fwd, n_rev, 1) + 1  # +1 pair reserved for web traffic
    bottleneck_delay = base_rtt / 2.0 * 0.5
    fwd_access = access_delays_for_rtts(params["flow_rtts"], bottleneck_delay)
    # pad access-delay lists up to the host count
    pad = [fwd_access[0] if fwd_access else 1e-3]
    left_delays = (fwd_access + pad * n_hosts)[:n_hosts]
    right_delays = list(left_delays)

    sim = Simulator(seed=params["seed"])
    sim.profiler = obs_runtime.active_profiler()
    obs_runtime.note_simulator(sim)
    sender_kwargs = scheme_sender_kwargs(spec, bandwidth, pkt_size, n_fwd, base_rtt)

    def fwd_qdisc():
        return spec.make_qdisc(sim, buffer_pkts, bandwidth, pkt_size, n_fwd, base_rtt)

    def rev_qdisc():
        # The bottleneck is symmetric: reverse-direction data (and the
        # forward flows' ACKs) see the same buffer and discipline.
        return spec.make_qdisc(sim, buffer_pkts, bandwidth, pkt_size, n_rev, base_rtt)

    db = make_topology(
        "dumbbell",
        sim,
        n_left=n_hosts,
        n_right=n_hosts,
        bottleneck_bw=bandwidth,
        bottleneck_delay=bottleneck_delay,
        qdisc_fwd=fwd_qdisc,
        qdisc_rev=rev_qdisc,
        access_delays_left=left_delays,
        access_delays_right=right_delays,
    )

    flow_ids = itertools.count()
    rng = sim.stream("starts")

    fwd_flows: List[Tuple[TcpSender, TcpSink]] = []
    for i in range(n_fwd):
        fid = next(flow_ids)
        sender, sink = connect_flow(
            sim, db.left[i], db.right[i], flow_id=fid, sender_cls=spec.sender_cls,
            pkt_size=pkt_size, record_rtt=(record_rtt_flow == i), **sender_kwargs,
        )
        sender.start(at=rng.uniform(0.0, start_window))
        fwd_flows.append((sender, sink))
    rev_flows: List[Tuple[TcpSender, TcpSink]] = []
    for i in range(n_rev):
        fid = next(flow_ids)
        sender, sink = connect_flow(
            sim, db.right[i], db.left[i], flow_id=fid, sender_cls=spec.sender_cls,
            pkt_size=pkt_size, **sender_kwargs,
        )
        sender.start(at=rng.uniform(0.0, start_window))
        rev_flows.append((sender, sink))

    if params["web_sessions"] > 0:
        start_web_sessions(
            sim,
            params["web_sessions"],
            server=db.left[n_hosts - 1],
            client=db.right[n_hosts - 1],
            flow_ids=flow_ids,
            rng=sim.stream("web-starts"),
            start_window=start_window,
            sender_cls=spec.sender_cls,
            pkt_size=pkt_size,
            **sender_kwargs,
        )

    window = LinkWindow(sim, db.fwd)
    drop_log = DropLog(db.bottleneck_queue)
    sampler = QueueSampler(
        sim, db.bottleneck_queue,
        interval=params["queue_sample_interval"] if record_rtt_flow is None else 0.005,
    )

    if collector is not None:
        collector.attach_queue(db.bottleneck_queue, "bottleneck.fwd", bandwidth=bandwidth)
        collector.attach_queue(db.rev.qdisc, "bottleneck.rev", bandwidth=bandwidth)
        collector.attach_link(db.fwd, "bottleneck.fwd")
        for sender, _ in fwd_flows + rev_flows:
            collector.attach_sender(sender)

    # The fluid background attaches strictly after everything above, so
    # the pure-packet construction prefix (streams, event sequence
    # numbers) is untouched — a run without a background is bit-identical
    # to one built before this feature existed.
    bg_source = None
    if params.get("background"):
        from ..hybrid.background import BackgroundLoad, attach_background

        bg_source = attach_background(
            sim, db,
            BackgroundLoad(**params["background"]),
            bandwidth=bandwidth,
            pkt_size=pkt_size,
            base_rtt=base_rtt,
            duration=params["duration"],
        )

    return _DumbbellState(
        params=params, sim=sim, db=db, fwd_flows=fwd_flows, rev_flows=rev_flows,
        window=window, drop_log=drop_log, sampler=sampler, collector=collector,
        bg_source=bg_source,
    )


def _resume_or_build(params, collector, ckpt) -> _DumbbellState:
    """Restore the checkpoint slot's state, or build fresh.

    A restored state is accepted only if its resolved parameters match
    this call exactly — the checkpoint file is keyed by spec hash when
    the runner installs it, but direct callers get the same guarantee.
    """
    if ckpt is not None:
        resumed = ckpt.resume()
        if resumed is not None:
            _sim, state = resumed
            if isinstance(state, _DumbbellState) and state.params == params:
                state.sim.profiler = obs_runtime.active_profiler()
                obs_runtime.note_simulator(state.sim)
                if state.collector is not None:
                    obs_runtime.adopt_collector(state.collector)
                return state
            ckpt.reject()
    t0 = time.monotonic()
    state = _build_dumbbell(params, collector)
    active = obs_runtime.active()
    if active is not None:
        active.add_phase("setup", time.monotonic() - t0)
    return state


def _advance(state: _DumbbellState, until: float, ckpt) -> None:
    """Run the simulation to *until*, checkpointing at interval boundaries.

    Chunked ``run(until=...)`` calls are bit-identical to a single call
    (the engine's pop-first loop pushes the one horizon-crossing event
    back), so checkpoint cadence never changes results.  No checkpoint is
    written at *until* itself — phase ends either lead straight into more
    simulation or into job completion, where the file is deleted anyway.
    """
    sim = state.sim
    if ckpt is None:
        sim.run(until=until)
        return
    while sim.now < until:
        target = min(until, sim.now + ckpt.interval)
        sim.run(until=target)
        if target < until:
            ckpt.save(sim, state)


def _warm_dumbbell(state: _DumbbellState, ckpt=None) -> None:
    """Run to the end of warm-up and open the measurement window.

    Idempotent across resumes: a state restored mid-measure (window
    already open, ``goodput0`` recorded) passes straight through.
    """
    warmup = state.params["warmup"]
    if state.sim.now < warmup:
        with obs_runtime.phase("warmup"):
            _advance(state, warmup, ckpt)
    if state.goodput0 is None:
        state.window.open()
        state.goodput0 = [sink.rcv_next for _, sink in state.fwd_flows]


def _measure_dumbbell(state: _DumbbellState, ckpt=None) -> None:
    """Run the steady-state window to ``duration`` and close it."""
    with obs_runtime.phase("measure"):
        _advance(state, state.params["duration"], ckpt)
    state.window.close()
    if state.collector is not None:
        state.collector.finalize(state.sim)


def _dumbbell_result(state: _DumbbellState, keep_refs: bool = False) -> DumbbellResult:
    """Compute the steady-state metrics from a measured state."""
    p = state.params
    span = p["duration"] - p["warmup"]
    goodputs = [
        (sink.rcv_next - g0) * p["pkt_size"] * 8.0 / span
        for (_, sink), g0 in zip(state.fwd_flows, state.goodput0)
    ]
    mean_q = state.sampler.mean(start=p["warmup"], end=p["duration"])
    all_senders = [s for s, _ in state.fwd_flows + state.rev_flows]
    result = DumbbellResult(
        scheme=p["scheme"],
        bandwidth=p["bandwidth"],
        rtt=p["base_rtt"],
        n_fwd=p["n_fwd"],
        n_rev=p["n_rev"],
        web_sessions=p["web_sessions"],
        buffer_pkts=p["buffer_pkts"],
        mean_queue_pkts=mean_q,
        norm_queue=mean_q / p["buffer_pkts"],
        drop_rate=state.window.drop_rate,
        mark_rate=state.window.mark_rate,
        utilization=state.window.utilization,
        jain=jain_index(goodputs) if goodputs else 0.0,
        flow_goodputs_bps=goodputs,
        early_responses=sum(getattr(s, "early_responses", 0) for s in all_senders),
        timeouts=sum(s.timeouts for s in all_senders),
        events_processed=state.sim.events_processed,
    )
    bg = p.get("background")
    if bg and state.bg_source is not None:
        result.background_model = bg["model"]
        result.background_share = bg["share"]
        result.background_pkts = state.bg_source.pkts_sent
        result.extras["background_offered_pkts"] = state.bg_source.offered_pkts
        if state.bg_source.sink is not None:
            result.extras["background_delivered_pkts"] = (
                state.bg_source.sink.pkts_received
            )
    if p["record_rtt_flow"] is not None:
        tagged = state.fwd_flows[p["record_rtt_flow"]][0]
        result.extras["rtt_trace"] = tagged.rtt_trace
        result.extras["flow_losses"] = tagged.loss_events
        result.extras["queue_drops"] = state.drop_log.times()
        result.extras["queue_sampler"] = state.sampler
        result.extras["queue_stats"] = state.db.bottleneck_queue.stats
    if keep_refs:
        result.extras["sim"] = state.sim
        result.extras["dumbbell"] = state.db
        result.extras["fwd_flows"] = state.fwd_flows
        result.extras["rev_flows"] = state.rev_flows
    return result


# ----------------------------------------------------------------------
# warm-start: one warm-up, many measured continuations
# ----------------------------------------------------------------------
def warm_dumbbell_bytes(scheme: str, bandwidth: float, **kwargs) -> bytes:
    """Build and warm one dumbbell run; return its snapshot body.

    Accepts the same keyword arguments as :func:`run_dumbbell` (minus
    ``keep_refs``/``collector``).  The returned bytes capture the run at
    the instant the measurement window opens; feed them to
    :func:`run_dumbbell_warm` once per desired ``duration``.  Because
    construction and warm-up do not depend on ``duration``, every
    continuation is bit-identical to the corresponding cold run.
    """
    kwargs.setdefault("duration", kwargs.get("warmup", 20.0))
    defaults = dict(
        rtt=0.060, n_fwd=10, n_rev=0, web_sessions=0, warmup=20.0, seed=1,
        pkt_size=1000, buffer_pkts=None, rtts=None, start_window=None,
        record_rtt_flow=None, queue_sample_interval=0.02, background=None,
    )
    defaults.update(kwargs)
    params = _resolve_params(scheme=scheme, bandwidth=bandwidth, **defaults)
    state = _build_dumbbell(params, collector=None)
    _warm_dumbbell(state)
    return capture_bytes(state.sim, state)


def run_dumbbell_warm(body: bytes, duration: float) -> DumbbellResult:
    """Measure one continuation of a :func:`warm_dumbbell_bytes` capture.

    Restores an independent clone of the warmed state (the original
    bytes stay reusable), runs the steady-state window out to *duration*
    and returns the same :class:`DumbbellResult` a cold
    :func:`run_dumbbell` with that duration produces.
    """
    _sim, state = restore_bytes(body)
    if not isinstance(state, _DumbbellState):
        raise TypeError(
            "run_dumbbell_warm needs bytes from warm_dumbbell_bytes, got "
            f"state of type {type(state).__name__}"
        )
    state.params = dict(state.params, duration=float(duration))
    _measure_dumbbell(state)
    return _dumbbell_result(state)
