"""Figure 5: PERT's probabilistic response curve.

Purely analytic: tabulates the gentle-RED response probability over the
queuing-delay signal with the paper's parameters (T_min = 5 ms above
propagation, T_max = 10 ms, p_max = 0.05, ramp to 1 at 2*T_max).
"""

from __future__ import annotations

from typing import Dict, List

from ..core.response import GentleRedCurve
from .report import format_table

__all__ = ["run", "validation_metrics", "main"]

PAPER_EXPECTATION = (
    "0 below T_min; linear to p_max=0.05 at T_max; linear to 1 at "
    "2*T_max; 1 beyond (Figure 5)."
)


def run(n_points: int = 25, t_min: float = 0.005, t_max: float = 0.010,
        p_max: float = 0.05) -> List[dict]:
    curve = GentleRedCurve(t_min=t_min, t_max=t_max, p_max=p_max)
    hi = 2.5 * t_max
    rows = []
    for i in range(n_points):
        q = hi * i / (n_points - 1)
        rows.append({"queuing_delay_ms": q * 1e3, "probability": curve(q)})
    return rows


def validation_metrics(rows: List[dict]) -> Dict[str, float]:
    """Flatten :func:`run` output for ``repro.validate`` (p at each delay)."""
    from ..validate.extract import metric_id

    # The delay grid is computed in float; round the id tag so e.g.
    # 7.500000000000002 ms keys as "7.5" in the expected files.
    return {
        metric_id("", "p", {"delay_ms": round(row["queuing_delay_ms"], 6)}):
            row["probability"]
        for row in rows
    }


def main() -> None:
    rows = run()
    print(format_table(rows, ["queuing_delay_ms", "probability"],
                       title="Figure 5 — PERT response curve"))
    print(f"\nPaper expectation: {PAPER_EXPECTATION}")


if __name__ == "__main__":
    main()
