"""Figure 14: emulating PI at end hosts (PERT-PI vs router PI/ECN).

Paper setup: like the Figure 7 RTT sweep, comparing PERT-PI against
router-based PI with ECN support (and implicitly PERT/RED).  PERT-PI's
controller gains come from Theorem 2, scaled by link capacity; the
target queuing delay is 3 ms.

Paper claims: PERT-PI matches router PI/ECN on utilization and average
queue, is very effective at avoiding drops, and its fairness is slightly
worse at low RTTs / slightly better at high RTTs.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .common import run_dumbbell
from .report import format_table
from .sweep import result_row

__all__ = ["run", "validation_metrics", "main", "DEFAULT_RTTS",
           "FIG14_SCHEMES"]

PAPER_EXPECTATION = (
    "PERT-PI utilization and queue similar to router PI/ECN; ~zero "
    "drops; fairness comparable (slightly worse at low RTT, slightly "
    "better at high RTT)."
)

DEFAULT_RTTS = [0.02, 0.06, 0.120, 0.240]
FIG14_SCHEMES = ("pert-pi", "sack-pi-ecn", "pert")


def run(
    rtts: Optional[Sequence[float]] = None,
    bandwidth: float = 16e6,
    n_fwd: int = 12,
    seed: int = 1,
    schemes: Sequence[str] = FIG14_SCHEMES,
    web_sessions: int = 3,
    base_duration: float = 40.0,
) -> List[dict]:
    rtts = list(rtts) if rtts is not None else DEFAULT_RTTS
    rows: List[dict] = []
    for rtt in rtts:
        duration = max(base_duration, 300.0 * rtt)
        warmup = duration * 0.375
        for scheme in schemes:
            result = run_dumbbell(
                scheme,
                bandwidth=bandwidth,
                rtt=rtt,
                n_fwd=n_fwd,
                duration=duration,
                warmup=warmup,
                seed=seed,
                web_sessions=web_sessions,
            )
            rows.append(result_row(result, {"rtt_ms": rtt * 1e3}))
    return rows


def validation_metrics(rows: List[dict]):
    """Flatten :func:`run` output for ``repro.validate`` (per-RTT rows)."""
    from ..validate.extract import rows_to_metrics

    return rows_to_metrics(
        rows, metrics=("norm_queue", "drop_rate", "utilization", "jain"),
        keys=("rtt_ms",),
    )


def main() -> None:
    rows = run()
    print(format_table(
        rows,
        ["rtt_ms", "scheme", "norm_queue", "drop_rate", "utilization", "jain"],
        title="Figure 14 — emulating PI at end hosts",
    ))
    print(f"\nPaper expectation: {PAPER_EXPECTATION}")


if __name__ == "__main__":
    main()
