"""Section 2 measurement study: traffic cases and tagged-flow traces.

The paper's Section 2 builds six traffic cases on a single-bottleneck
topology — combinations of {50, 100} long-term flows (split between the
two directions) and {100, 500, 1000} web sessions — and observes one
tagged long-term flow, collecting its per-ACK RTT samples, its own loss
events, and all drops at the bottleneck queue.  Figures 2, 3 and 4 are
all computed from these traces.

This module produces the same artefacts at a configurable scale: the
default ``TrafficCase`` grid divides flow counts and web sessions by ~5
and the bandwidth by ~6 relative to the paper, keeping per-flow windows
comparable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from .common import run_dumbbell

__all__ = [
    "TrafficCase",
    "default_cases",
    "collect_case_trace",
    "collect_all_cases",
    "CaseTrace",
]


@dataclass(frozen=True)
class TrafficCase:
    """One Section 2 load case (paper: case1..case6)."""

    name: str
    n_fwd: int
    n_rev: int
    web_sessions: int


def default_cases(scale: float = 1.0) -> List[TrafficCase]:
    """The six paper cases, scaled down for a pure-Python substrate.

    Paper grid: {50, 100} long flows x {100, 500, 1000} web sessions on a
    100 Mbps bottleneck.  Default scale 1.0 gives {10, 20} long flows x
    {4, 10, 20} web sessions on the 16 Mbps bottleneck used by
    :func:`collect_case_trace`.
    """
    longs = [int(10 * scale) or 1, int(20 * scale) or 2]
    webs = [int(4 * scale) or 1, int(10 * scale) or 2, int(20 * scale) or 3]
    cases = []
    i = 1
    for n_long in longs:
        for web in webs:
            cases.append(
                TrafficCase(
                    name=f"case{i}",
                    n_fwd=n_long,
                    n_rev=max(1, n_long // 2),
                    web_sessions=web,
                )
            )
            i += 1
    return cases


@dataclass
class CaseTrace:
    """Artefacts of one observed-flow measurement run."""

    case: TrafficCase
    rtt_trace: List[Tuple[float, float, float]]  # (time, rtt, cwnd)
    flow_losses: List[float]
    queue_drops: List[float]
    queue_sampler: object  # QueueSampler (length_at / mean)
    buffer_pkts: int
    base_rtt: float


def collect_case_trace(
    case: TrafficCase,
    bandwidth: float = 16e6,
    rtt: float = 0.060,
    duration: float = 60.0,
    warmup: float = 10.0,
    seed: int = 1,
    scheme: str = "sack-droptail",
) -> CaseTrace:
    """Run one traffic case, observing forward flow 0 (the paper's flow).

    The observed flow records every per-ACK RTT; losses are logged both
    at the flow (its own loss detections, the tcpdump-style view) and at
    the bottleneck queue (every drop) — the two loss definitions
    contrasted in Figure 2.

    As in the paper's Section 2 topology, the competing flows get a
    spread of RTTs (the observed flow keeps exactly *rtt*), which
    desynchronizes their sawtooths.
    """
    rtts = [rtt]
    for i in range(1, case.n_fwd):
        rtts.append(rtt * (0.6 + 1.4 * (i - 1) / max(1, case.n_fwd - 2)))
    result = run_dumbbell(
        scheme,
        bandwidth=bandwidth,
        rtt=rtt,
        rtts=rtts[: case.n_fwd],
        n_fwd=case.n_fwd,
        n_rev=case.n_rev,
        web_sessions=case.web_sessions,
        duration=duration,
        warmup=warmup,
        seed=seed,
        record_rtt_flow=0,
    )
    trace = [(t, r, w) for t, r, w in result.extras["rtt_trace"] if t >= warmup]
    return CaseTrace(
        case=case,
        rtt_trace=trace,
        flow_losses=[t for t in result.extras["flow_losses"] if t >= warmup],
        queue_drops=[t for t in result.extras["queue_drops"] if t >= warmup],
        queue_sampler=result.extras["queue_sampler"],
        buffer_pkts=result.buffer_pkts,
        base_rtt=result.rtt,
    )


def collect_all_cases(
    cases: List[TrafficCase] = None, **kwargs
) -> Dict[str, CaseTrace]:
    """Collect traces for every case; keyed by case name."""
    cases = cases if cases is not None else default_cases()
    return {c.name: collect_case_trace(c, **kwargs) for c in cases}
