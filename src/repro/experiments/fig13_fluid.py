"""Figure 13: fluid-model stability of PERT/RED.

(a) minimum stable sampling interval δ versus the flow lower bound N⁻
    (eq. 13), for C = 10 Mbps (1000 pkt/s), R⁺ = 200 ms, p_max = 0.1,
    T_min/T_max = 50/100 ms, α = 0.99 — monotonically decreasing,
    reaching ≈0.1 s at N⁻ = 40;

(b-d) DDE trajectories of the model (eq. 14) with C = 100 pkt/s, N = 5:
    stable and monotone at R = 100 ms, stable with decaying oscillation
    at R = 160 ms, unstable (persistent oscillation) at R = 171 ms.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..fluid.registry import make_fluid_model
from ..fluid.stability import min_delta, trajectory_is_stable
from .report import format_table

__all__ = ["run_min_delta", "run_trajectories", "run", "validation_metrics",
           "main"]

PAPER_EXPECTATION = (
    "(a) min delta decreases monotonically to ~0.1 s at N-=40; "
    "(b-d) stable at R=100 and 160 ms, unstable at 171 ms."
)

FIG13A_PARAMS = dict(capacity=1000.0, r_plus=0.2, p_max=0.1,
                     t_min=0.05, t_max=0.1, alpha=0.99)
FIG13BD_PARAMS = dict(capacity=100.0, n_flows=5, p_max=0.1,
                      t_min=0.05, t_max=0.1, alpha=0.99, delta=1e-4)
FIG13_DELAYS = (0.100, 0.160, 0.171)


def run_min_delta(n_values: Sequence[int] = (1, 2, 5, 10, 20, 30, 40, 50)
                  ) -> List[Dict]:
    """Figure 13(a): δ_min versus N⁻ (paper eq. 13)."""
    rows = []
    for n in n_values:
        rows.append({
            "n_minus": n,
            "min_delta_s": min_delta(n_minus=n, **FIG13A_PARAMS),
        })
    return rows


def run_trajectories(
    delays: Sequence[float] = FIG13_DELAYS,
    duration: float = 60.0,
    dt: float = 2e-3,
) -> List[Dict]:
    """Figure 13(b-d): classify DDE trajectories at each delay."""
    rows = []
    for r in delays:
        model = make_fluid_model("pert_red", rtt=r, **FIG13BD_PARAMS)
        sol = model.simulate(duration=duration, dt=dt)
        w_star, p_star, tq_star = model.equilibrium()
        tail = sol.component(0)[-int(1.0 / dt):]
        rows.append({
            "rtt_ms": r * 1e3,
            "stable": trajectory_is_stable(sol),
            "w_star": w_star,
            "w_tail_min": float(tail.min()),
            "w_tail_max": float(tail.max()),
        })
    return rows


def run(**kwargs) -> Dict[str, List[Dict]]:
    return {
        "fig13a": run_min_delta(),
        "fig13bd": run_trajectories(**kwargs),
    }


def validation_metrics(output: Dict[str, List[Dict]]):
    """Flatten :func:`run` output for ``repro.validate``.

    Emits δ_min per N⁻ (Figure 13a), plus the stability verdict (1.0 =
    stable) and equilibrium window per delay (Figure 13b-d) — the
    paper's claim is precisely the stable/stable/unstable pattern.
    """
    from ..validate.extract import metric_id

    out = {}
    for row in output["fig13a"]:
        out[metric_id("", "min_delta_s", {"n_minus": row["n_minus"]})] = \
            row["min_delta_s"]
    for row in output["fig13bd"]:
        tags = {"rtt_ms": row["rtt_ms"]}
        out[metric_id("", "stable", tags)] = 1.0 if row["stable"] else 0.0
        out[metric_id("", "w_star", tags)] = row["w_star"]
    return out


def main() -> None:
    out = run()
    print(format_table(out["fig13a"], ["n_minus", "min_delta_s"],
                       title="Figure 13(a) — minimum stable sampling interval"))
    print()
    print(format_table(out["fig13bd"],
                       ["rtt_ms", "stable", "w_star", "w_tail_min",
                        "w_tail_max"],
                       title="Figure 13(b-d) — PERT/RED fluid trajectories"))
    print(f"\nPaper expectation: {PAPER_EXPECTATION}")


if __name__ == "__main__":
    main()
