"""Experiment harness: one module per paper table/figure.

``common.run_dumbbell`` is the workhorse; ``scenarios.SCHEMES`` holds the
protocol/queue pairings; each ``figN_*`` / ``table1_*`` module exposes
``run()`` returning table rows and ``main()`` printing the reproduction
alongside the paper's expectation.
"""

from .common import DumbbellResult, bdp_packets, run_dumbbell
from .report import format_table
from .scenarios import SCHEMES, Scheme, get_scheme
from .section2 import TrafficCase, collect_case_trace, default_cases
from .sweep import SECTION4_SCHEMES, sweep_dumbbell

__all__ = [
    "run_dumbbell",
    "DumbbellResult",
    "bdp_packets",
    "SCHEMES",
    "Scheme",
    "get_scheme",
    "format_table",
    "sweep_dumbbell",
    "SECTION4_SCHEMES",
    "TrafficCase",
    "default_cases",
    "collect_case_trace",
]
