"""Parameter-sweep driver shared by the Section 4 figures.

Each of Figures 6-9 is a sweep of one dumbbell parameter with the four
schemes overlaid; this module expands the grid into deterministic job
specs and hands them to :mod:`repro.runner`, which supplies process
fan-out, on-disk result caching, per-job timeouts and crash isolation.
Rows come back flattened (one per scheme x point) ready for
:func:`repro.experiments.report.format_table`, in the same point-major
order as the historical serial loop — the runner guarantees the rows are
identical whether executed with ``workers=0`` (serial debug path),
``workers=N``, or straight from cache.
"""

from __future__ import annotations

import math
import time
from dataclasses import fields as dataclass_fields
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..runner import dumbbell_spec, run_jobs
from ..runner.cache import resolve_cache
from .common import DumbbellResult, run_dumbbell_warm, warm_dumbbell_bytes

__all__ = ["SECTION4_SCHEMES", "sweep_dumbbell", "result_row", "failed_row"]

#: the paper's Section 4 comparison set
SECTION4_SCHEMES = ("pert", "sack-droptail", "sack-red-ecn", "vegas")

#: headline metrics copied into every sweep row
_ROW_FIELDS = (
    "scheme",
    "norm_queue",
    "drop_rate",
    "utilization",
    "jain",
    "mean_queue_pkts",
    "buffer_pkts",
)


def result_row(result, point: Dict) -> Dict:
    """Flatten a run result into a table row, tagged with sweep values.

    *result* may be a :class:`~repro.experiments.common.DumbbellResult`
    or the equivalent JSON dict payload produced by the runner.
    """
    row = dict(point)
    if isinstance(result, DumbbellResult):
        row.update({name: getattr(result, name) for name in _ROW_FIELDS})
    else:
        row.update({name: result[name] for name in _ROW_FIELDS})
    return row


def failed_row(scheme: str, point: Dict, error: Optional[str]) -> Dict:
    """Row marking a job that exhausted its retries; metrics are NaN."""
    row = dict(point)
    row.update(
        scheme=scheme,
        norm_queue=math.nan,
        drop_rate=math.nan,
        utilization=math.nan,
        jain=math.nan,
        mean_queue_pkts=math.nan,
        buffer_pkts=0,
        failed=True,
        error=error or "unknown failure",
    )
    return row


def sweep_dumbbell(
    points: Sequence[Dict],
    schemes: Iterable[str] = SECTION4_SCHEMES,
    *,
    tags: Optional[Sequence[Dict]] = None,
    workers: Optional[int] = None,
    cache=None,
    timeout: Optional[float] = None,
    retries: int = 1,
    progress=None,
    warm_start: bool = False,
    checkpoint: Optional[float] = None,
    fleet=None,
    **base_kwargs,
) -> List[Dict]:
    """Run every scheme at every sweep point.

    *points* are dicts of :func:`repro.experiments.common.run_dumbbell`
    keyword overrides.  *tags* (parallel to *points*) supplies the row
    columns identifying each point; when omitted, the point dict itself
    is used — appropriate when the override keys are the natural column
    names.  :class:`~repro.experiments.scenarios.ScenarioSpec` passes
    explicit tags so that derived run parameters (per-point durations,
    unit conversions) stay out of the result rows.

    Execution goes through :func:`repro.runner.run_jobs`: ``workers``
    selects process fan-out (``0`` = serial in-process fallback, ``None``
    = ``$REPRO_WORKERS``), ``cache`` the on-disk result cache, and
    ``timeout``/``retries`` the per-job failure policy.  A job that still
    fails after its retries yields a NaN-metric row flagged
    ``failed=True`` instead of aborting the sweep.

    ``warm_start=True`` simulates each scheme's warm-up transient once
    and measures every sweep point from an independent clone of that
    warmed state (see :mod:`repro.snapshot`).  Valid only for sweeps
    whose points share an identical prefix — each point may override
    only ``duration``.  Rows are exactly the rows the cold path
    produces (bit-identical continuations), and they are written into
    the same cache entries, so warm and cold sweeps interoperate.
    ``checkpoint`` is forwarded to :func:`repro.runner.run_jobs` for
    crash-resumable cold jobs; warm-start runs in-process and ignores it.

    ``fleet`` routes the sweep through :mod:`repro.fleet` instead of
    :func:`~repro.runner.run_jobs`: a :class:`~repro.fleet.scheduler.Fleet`
    instance, a fleet directory path, or ``None`` to consult
    ``$REPRO_FLEET`` (unset → the plain runner path).  Fleet sweeps are
    durably journaled — kill the process at any point and
    ``python -m repro.fleet resume <dir>`` converges without recomputing
    finished points.  Mutually exclusive with ``warm_start`` (the warm
    path is in-process by construction).
    """
    from ..fleet import resolve_fleet  # local: fleet depends on runner

    if tags is None:
        tags = list(points)
    elif len(tags) != len(points):
        raise ValueError("tags must have one entry per point")
    schemes = tuple(schemes)
    live_fleet = resolve_fleet(fleet)
    if warm_start:
        if live_fleet is not None:
            raise ValueError(
                "warm_start sweeps run in-process and cannot be fleeted; "
                "pass fleet=False (or unset $REPRO_FLEET) for warm starts"
            )
        return _sweep_warm_start(points, schemes, tags, cache, base_kwargs)
    specs, job_tags = [], []
    for point, tag in zip(points, tags):
        for scheme in schemes:
            kwargs = dict(base_kwargs)
            kwargs.update(point)
            specs.append(dumbbell_spec(scheme, **kwargs))
            job_tags.append((scheme, tag))
    if live_fleet is not None:
        return _sweep_fleet(live_fleet, specs, job_tags, workers, checkpoint)
    results = run_jobs(
        specs,
        workers=workers,
        cache=cache,
        timeout=timeout,
        retries=retries,
        progress=progress,
        checkpoint=checkpoint,
    )
    rows: List[Dict] = []
    for res, (scheme, tag) in zip(results, job_tags):
        if res.ok:
            rows.append(result_row(res.value, tag))
        else:
            rows.append(failed_row(scheme, tag, res.error))
    return rows


def _sweep_fleet(fleet, specs, job_tags, workers, checkpoint) -> List[Dict]:
    """Fleet expansion: submit (deduping against the store), drain, read.

    Rows come back in the same point-major order as the runner path —
    :meth:`~repro.fleet.scheduler.Fleet.results` preserves the receipt's
    submission order, which mirrors the spec list.  Points already in
    the fleet's content-addressed store (from *any* earlier sweep) are
    never recomputed; they surface as submit-time dedupes.
    """
    from ..runner.executor import resolve_workers  # local: optional dep

    if checkpoint is not None:
        fleet.checkpoint = checkpoint
    receipt = fleet.submit(specs)
    fleet.drain(workers=resolve_workers(workers))
    rows: List[Dict] = []
    for entry, (scheme, tag) in zip(fleet.results(receipt), job_tags):
        if entry["state"] == "done":
            rows.append(result_row(entry["payload"], tag))
        else:
            rows.append(failed_row(scheme, tag, entry["error"]))
    return rows


def _payload_of(result: DumbbellResult) -> Dict:
    """Flatten a result exactly like the runner's ``dumbbell`` job kind,
    so warm-started cache entries are indistinguishable from cold ones."""
    return {
        f.name: getattr(result, f.name)
        for f in dataclass_fields(DumbbellResult)
        if f.name != "extras"
    }


def _sweep_warm_start(
    points: Sequence[Dict],
    schemes: Tuple[str, ...],
    tags: Sequence[Dict],
    cache,
    base_kwargs: Dict,
) -> List[Dict]:
    """Warm-started expansion: per scheme, warm once, fork per duration.

    The warm-up prefix (topology, traffic, seeds, warm-up horizon) must
    be identical across points for the shared warm state to be valid, so
    per-point overrides are restricted to ``duration``.  Cache hits are
    honoured point by point; only missed points cost a measurement, and
    a scheme with no missed points never warms up at all.
    """
    for point in points:
        extra = set(point) - {"duration"}
        if extra:
            raise ValueError(
                "warm_start sweeps share one warm-up per scheme, so points "
                f"may override only 'duration'; got {sorted(extra)}"
            )
    store = resolve_cache(cache)
    rows_by: Dict[Tuple[int, str], Dict] = {}
    misses: Dict[str, List[Tuple[int, Dict, object]]] = {}
    for pi, (point, tag) in enumerate(zip(points, tags)):
        for scheme in schemes:
            kwargs = dict(base_kwargs)
            kwargs.update(point)
            spec = dumbbell_spec(scheme, **kwargs)
            entry = store.get(spec) if store is not None else None
            if entry is not None:
                rows_by[(pi, scheme)] = result_row(entry["payload"], tag)
            else:
                misses.setdefault(scheme, []).append((pi, kwargs, spec))

    for scheme, items in misses.items():
        warm_kwargs = {k: v for k, v in base_kwargs.items() if k != "duration"}
        try:
            body = warm_dumbbell_bytes(scheme, **warm_kwargs)
        except Exception as exc:  # noqa: BLE001 - keep the sweep alive
            error = f"{type(exc).__name__}: {exc}"
            for pi, _kwargs, _spec in items:
                rows_by[(pi, scheme)] = failed_row(scheme, tags[pi], error)
            continue
        for pi, kwargs, spec in items:
            t0 = time.monotonic()
            try:
                result = run_dumbbell_warm(body, kwargs.get("duration", 60.0))
            except Exception as exc:  # noqa: BLE001
                rows_by[(pi, scheme)] = failed_row(
                    scheme, tags[pi], f"{type(exc).__name__}: {exc}"
                )
                continue
            payload = _payload_of(result)
            if store is not None:
                store.put(spec, payload, meta={
                    "events": result.events_processed,
                    "wall_time": time.monotonic() - t0,
                    "attempts": 1,
                    "warm_start": True,
                })
            rows_by[(pi, scheme)] = result_row(result, tags[pi])

    return [rows_by[(pi, scheme)] for pi in range(len(points)) for scheme in schemes]
