"""Parameter-sweep driver shared by the Section 4 figures.

Each of Figures 6-9 is a sweep of one dumbbell parameter with the four
schemes overlaid; this module runs the grid and flattens results to rows
(one per scheme x point) ready for :func:`repro.experiments.report.format_table`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from .common import DumbbellResult, run_dumbbell

__all__ = ["SECTION4_SCHEMES", "sweep_dumbbell", "result_row"]

#: the paper's Section 4 comparison set
SECTION4_SCHEMES = ("pert", "sack-droptail", "sack-red-ecn", "vegas")


def result_row(result: DumbbellResult, point: Dict) -> Dict:
    """Flatten a run result into a table row, tagged with sweep values."""
    row = dict(point)
    row.update(
        scheme=result.scheme,
        norm_queue=result.norm_queue,
        drop_rate=result.drop_rate,
        utilization=result.utilization,
        jain=result.jain,
        mean_queue_pkts=result.mean_queue_pkts,
        buffer_pkts=result.buffer_pkts,
    )
    return row


def sweep_dumbbell(
    points: Sequence[Dict],
    schemes: Iterable[str] = SECTION4_SCHEMES,
    **base_kwargs,
) -> List[Dict]:
    """Run every scheme at every sweep point.

    *points* are dicts of :func:`run_dumbbell` keyword overrides; any
    extra keys the runner does not accept should not appear here — tag
    columns are added by the caller via the point values themselves.
    """
    rows: List[Dict] = []
    for point in points:
        for scheme in schemes:
            kwargs = dict(base_kwargs)
            kwargs.update(point)
            result = run_dumbbell(scheme, **kwargs)
            rows.append(result_row(result, point))
    return rows
