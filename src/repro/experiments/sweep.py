"""Parameter-sweep driver shared by the Section 4 figures.

Each of Figures 6-9 is a sweep of one dumbbell parameter with the four
schemes overlaid; this module expands the grid into deterministic job
specs and hands them to :mod:`repro.runner`, which supplies process
fan-out, on-disk result caching, per-job timeouts and crash isolation.
Rows come back flattened (one per scheme x point) ready for
:func:`repro.experiments.report.format_table`, in the same point-major
order as the historical serial loop — the runner guarantees the rows are
identical whether executed with ``workers=0`` (serial debug path),
``workers=N``, or straight from cache.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence

from ..runner import dumbbell_spec, run_jobs
from .common import DumbbellResult

__all__ = ["SECTION4_SCHEMES", "sweep_dumbbell", "result_row", "failed_row"]

#: the paper's Section 4 comparison set
SECTION4_SCHEMES = ("pert", "sack-droptail", "sack-red-ecn", "vegas")

#: headline metrics copied into every sweep row
_ROW_FIELDS = (
    "scheme",
    "norm_queue",
    "drop_rate",
    "utilization",
    "jain",
    "mean_queue_pkts",
    "buffer_pkts",
)


def result_row(result, point: Dict) -> Dict:
    """Flatten a run result into a table row, tagged with sweep values.

    *result* may be a :class:`~repro.experiments.common.DumbbellResult`
    or the equivalent JSON dict payload produced by the runner.
    """
    row = dict(point)
    if isinstance(result, DumbbellResult):
        row.update({name: getattr(result, name) for name in _ROW_FIELDS})
    else:
        row.update({name: result[name] for name in _ROW_FIELDS})
    return row


def failed_row(scheme: str, point: Dict, error: Optional[str]) -> Dict:
    """Row marking a job that exhausted its retries; metrics are NaN."""
    row = dict(point)
    row.update(
        scheme=scheme,
        norm_queue=math.nan,
        drop_rate=math.nan,
        utilization=math.nan,
        jain=math.nan,
        mean_queue_pkts=math.nan,
        buffer_pkts=0,
        failed=True,
        error=error or "unknown failure",
    )
    return row


def sweep_dumbbell(
    points: Sequence[Dict],
    schemes: Iterable[str] = SECTION4_SCHEMES,
    *,
    tags: Optional[Sequence[Dict]] = None,
    workers: Optional[int] = None,
    cache=None,
    timeout: Optional[float] = None,
    retries: int = 1,
    progress=None,
    **base_kwargs,
) -> List[Dict]:
    """Run every scheme at every sweep point.

    *points* are dicts of :func:`repro.experiments.common.run_dumbbell`
    keyword overrides.  *tags* (parallel to *points*) supplies the row
    columns identifying each point; when omitted, the point dict itself
    is used — appropriate when the override keys are the natural column
    names.  :class:`~repro.experiments.scenarios.ScenarioSpec` passes
    explicit tags so that derived run parameters (per-point durations,
    unit conversions) stay out of the result rows.

    Execution goes through :func:`repro.runner.run_jobs`: ``workers``
    selects process fan-out (``0`` = serial in-process fallback, ``None``
    = ``$REPRO_WORKERS``), ``cache`` the on-disk result cache, and
    ``timeout``/``retries`` the per-job failure policy.  A job that still
    fails after its retries yields a NaN-metric row flagged
    ``failed=True`` instead of aborting the sweep.
    """
    if tags is None:
        tags = list(points)
    elif len(tags) != len(points):
        raise ValueError("tags must have one entry per point")
    schemes = tuple(schemes)
    specs, job_tags = [], []
    for point, tag in zip(points, tags):
        for scheme in schemes:
            kwargs = dict(base_kwargs)
            kwargs.update(point)
            specs.append(dumbbell_spec(scheme, **kwargs))
            job_tags.append((scheme, tag))
    results = run_jobs(
        specs,
        workers=workers,
        cache=cache,
        timeout=timeout,
        retries=retries,
        progress=progress,
    )
    rows: List[Dict] = []
    for res, (scheme, tag) in zip(results, job_tags):
        if res.ok:
            rows.append(result_row(res.value, tag))
        else:
            rows.append(failed_row(scheme, tag, res.error))
    return rows
