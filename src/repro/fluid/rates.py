"""Sending-rate trajectories: the fluid side of the hybrid coupling.

Every registered fluid model (:mod:`repro.fluid.registry`) describes
``n_flows`` identical flows whose per-flow congestion window W(t) is the
first state component, so the aggregate arrival rate the ensemble offers
at the bottleneck is the same expression for all of them:

    r(t) = N(t) * W(t) / R        [packets / second]

This module integrates a model and exports that trajectory in the form
the packet engine can consume: a :class:`RateTrajectory` (rate sampled
on the DDE grid) and its reduction to piecewise-constant
:class:`RateSegment` runs, which :class:`repro.hybrid.BackgroundSource`
schedules through the ordinary event loop.  The segment reduction uses
the segment-mean rate, so the total offered load over any segment
boundary-aligned interval is preserved exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from .dde import DdeSolution

__all__ = [
    "RateSegment",
    "RateTrajectory",
    "rate_trajectory",
    "equilibrium_rate",
]


@dataclass(frozen=True)
class RateSegment:
    """One piecewise-constant run of aggregate arrival rate."""

    #: segment start time (seconds, fluid-model clock)
    start: float
    #: segment end time (seconds)
    end: float
    #: constant aggregate arrival rate over [start, end) in packets/second
    rate_pps: float

    def __post_init__(self):
        if not self.end > self.start:
            raise ValueError("rate segment needs end > start")
        if self.rate_pps < 0:
            raise ValueError("rate_pps must be >= 0")


@dataclass(frozen=True)
class RateTrajectory:
    """Aggregate fluid arrival rate sampled on the integrator's grid.

    ``rate_pps[i]`` is the ensemble rate N·W(times[i])/R in
    packets/second.  :meth:`segments` reduces the trajectory to
    piecewise-constant runs for event-driven injection;
    :meth:`steady_rate` estimates the settled rate from the tail.
    """

    times: np.ndarray
    rate_pps: np.ndarray

    def __post_init__(self) -> None:
        if self.times.shape != self.rate_pps.shape or self.times.ndim != 1:
            raise ValueError("times and rate_pps must be equal-length 1-D arrays")
        if self.times.size < 2:
            raise ValueError("need at least two samples")

    @property
    def duration(self) -> float:
        """Covered fluid-time horizon in seconds."""
        return float(self.times[-1] - self.times[0])

    def segments(self, seg_dt: float) -> List[RateSegment]:
        """Piecewise-constant reduction with segment length *seg_dt*.

        Each segment carries the trapezoidal mean of the sampled rate
        over its span, so the offered volume of the reduction matches
        the fluid trajectory segment by segment.  The last segment may
        be shorter than *seg_dt*; segments with non-positive mean rate
        are emitted with rate 0 (the injector idles through them).
        """
        if seg_dt <= 0:
            raise ValueError("seg_dt must be positive")
        t0, t1 = float(self.times[0]), float(self.times[-1])
        out: List[RateSegment] = []
        start = t0
        while start < t1 - 1e-12:
            end = min(start + seg_dt, t1)
            mean = self._mean_rate(start, end)
            out.append(RateSegment(start, end, max(0.0, mean)))
            start = end
        return out

    def _mean_rate(self, start: float, end: float) -> float:
        """Trapezoidal mean of the rate over [start, end]."""
        lo = np.searchsorted(self.times, start, side="left")
        hi = np.searchsorted(self.times, end, side="right")
        ts = np.concatenate(([start], self.times[lo:hi], [end]))
        rs = np.concatenate((
            [np.interp(start, self.times, self.rate_pps)],
            self.rate_pps[lo:hi],
            [np.interp(end, self.times, self.rate_pps)],
        ))
        span = end - start
        if span <= 0:
            return float(rs[0])
        return float(np.trapezoid(rs, ts) / span)

    def steady_rate(self, tail: float = 0.25) -> float:
        """Mean rate over the trailing *tail* fraction of the horizon."""
        if not 0 < tail <= 1:
            raise ValueError("tail must be in (0, 1]")
        start = float(self.times[-1]) - tail * self.duration
        return self._mean_rate(start, float(self.times[-1]))

    def is_settled(self, tail: float = 0.25, rel_tol: float = 0.05) -> bool:
        """Has the rate stopped moving over the trailing window?

        True when the peak-to-peak excursion of the tail is within
        *rel_tol* of the tail mean (absolute floor of one packet/s for
        near-zero rates).
        """
        start = float(self.times[-1]) - tail * self.duration
        lo = np.searchsorted(self.times, start, side="left")
        window = self.rate_pps[lo:]
        if window.size < 2:
            return False
        mean = float(np.mean(window))
        ptp = float(np.ptp(window))
        return ptp <= rel_tol * max(abs(mean), 1.0)


def _window_component(solution: DdeSolution) -> np.ndarray:
    """Per-flow window W(t) on the solution grid (first state component)."""
    return solution.y[:, 0]


def rate_trajectory(
    model,
    duration: float,
    dt: float = 1e-3,
    x0: Optional[Tuple[float, float, float]] = None,
    method: str = "rk4",
) -> RateTrajectory:
    """Integrate *model* and export its aggregate arrival-rate trajectory.

    *model* is any :class:`repro.fluid.FluidModel`; the rate is
    N·W(t)/R with a time-varying N(t) honoured when the model defines
    one (``n_of_t``, paper eq. 7).  Negative window excursions of the
    unclamped linear-analysis variants are floored at zero — an arrival
    process cannot send at a negative rate.
    """
    sol = model.simulate(duration, dt=dt, x0=x0, method=method)
    w = np.maximum(_window_component(sol), 0.0)
    n_of_t = getattr(model, "n_of_t", None)
    if n_of_t is not None:
        n = np.array([float(n_of_t(t)) for t in sol.t])
    else:
        n = float(model.n_flows)
    rate = n * w / model.rtt
    return RateTrajectory(times=np.asarray(sol.t, dtype=float),
                          rate_pps=np.asarray(rate, dtype=float))


def equilibrium_rate(model) -> float:
    """Aggregate arrival rate N·W*/R at the model's stationary point.

    For every registered model W* = R·C/N, so this is exactly the
    model's ``capacity`` — the fluid ensemble settles at full
    utilisation of the capacity share it was given.  Exposed as a
    function (rather than inlining ``model.capacity``) so hybrid code
    stays honest if a future model's equilibrium is not work-conserving.
    """
    w_star = model.equilibrium()[0]
    return model.n_flows * w_star / model.rtt
