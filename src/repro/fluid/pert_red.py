"""Fluid model of PERT emulating RED (paper eq. 2-7 and 14).

State vector (paper Section 5.3 notation):

    x1 = W(t)      congestion window        [packets]
    x2 = raw queuing-delay estimate Tq(t)   [seconds]
    x3 = smoothed (LPF) queuing delay       [seconds]

Dynamics (eq. 14):

    x1' = 1/R - L * x1(t) * x1(t-R) * (x3(t-R) - T_min) / (2R)
    x2' = N/(R*C) * x1(t) - 1
    x3' = K * x3(t) - K * x2(t)

with L = p_max / (T_max - T_min) (the RED-curve slope) and
K = ln(alpha) / delta < 0 (the continuous-time LPF pole).

``clamp=True`` restricts the emulated drop probability
``p = L (x3 - T_min)`` to [0, 1] and the queue delay x2 to be
non-negative — the physically meaningful variant used when trajectories
stray far from equilibrium; the paper's linear analysis corresponds to
``clamp=False``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from . import _legacy
from .dde import DdeBatchSolution, DdeSolution, integrate_dde, integrate_dde_batch

__all__ = ["PertRedFluidModel", "simulate_batch"]


@dataclass
class PertRedFluidModel:
    """PERT/RED fluid model with the paper's Figure 13 defaults.

    Parameters
    ----------
    capacity:
        Link capacity C in packets/second.
    n_flows:
        Number of PERT flows N.
    rtt:
        Round-trip delay R in seconds (assumed constant as in Sec. 5.2).
    p_max, t_min, t_max:
        Emulated gentle-RED curve parameters (probability / seconds).
    alpha:
        LPF history weight of the srtt signal (paper: 0.99).
    delta:
        Sampling interval of the LPF in seconds.
    """

    capacity: float = 100.0
    n_flows: int = 5
    rtt: float = 0.1
    p_max: float = 0.1
    t_min: float = 0.05
    t_max: float = 0.1
    alpha: float = 0.99
    delta: float = 1e-4
    #: multiplicative decrease factor β of the window dynamics (eq. 3).
    #: The paper's analysis uses 0.5 to compare against TCP/RED and notes
    #: "results for β = 0.35 can be similarly obtained" — set 0.35 to
    #: model PERT's actual early decrease.
    beta_decrease: float = 0.5
    clamp: bool = False
    #: replace the delayed window term W(t-R) by W(t), the approximation
    #: the paper's Section 5.3 uses to explain why the theoretical
    #: boundary (171 ms) is slightly conservative (instability at 175 ms)
    approximate_self_delay: bool = False
    #: optional time-varying flow count N(t) (paper eq. 7 allows it);
    #: when set, it overrides ``n_flows`` inside the dynamics, enabling
    #: fluid-level studies of flow arrivals/departures (cf. Figure 12)
    n_of_t: Optional[Callable[[float], float]] = None

    def __post_init__(self) -> None:
        _legacy.maybe_warn_legacy_init(type(self))
        if self.capacity <= 0 or self.n_flows <= 0 or self.rtt <= 0:
            raise ValueError("capacity, n_flows and rtt must be positive")
        if not 0 < self.alpha < 1:
            raise ValueError("alpha must be in (0, 1)")
        if not 0 <= self.t_min < self.t_max:
            raise ValueError("need 0 <= t_min < t_max")
        if not 0 < self.beta_decrease < 1:
            raise ValueError("beta_decrease must be in (0, 1)")

    # ------------------------------------------------------------------
    @property
    def l_pert(self) -> float:
        """Slope L_PERT = p_max / (T_max - T_min)  (paper eq. 10)."""
        return self.p_max / (self.t_max - self.t_min)

    @property
    def k_lpf(self) -> float:
        """LPF pole K = ln(alpha) / delta < 0  (paper eq. 10)."""
        return math.log(self.alpha) / self.delta

    def equilibrium(self) -> Tuple[float, float, float]:
        """Stationary point (W*, p*, Tq*) generalising eq. (9).

        W* = RC/N,  p* = 1/(2β·W*²)... more precisely, setting the
        window derivative to zero gives p* = 2β'/W*² where the paper's
        β = 0.5 recovers p* = 2N²/(R²C²); Tq* = T_min + p*/L.
        """
        w_star = self.rtt * self.capacity / self.n_flows
        p_star = 1.0 / (self.beta_decrease * w_star**2)
        tq_star = self.t_min + p_star / self.l_pert
        return w_star, p_star, tq_star

    def equilibrium_state(self) -> Tuple[float, float, float]:
        """:meth:`equilibrium` mapped onto the state vector (W, Tq, s)."""
        w_star, _, tq_star = self.equilibrium()
        return w_star, tq_star, tq_star

    # ------------------------------------------------------------------
    def rhs(self, t: float, x: np.ndarray, history) -> np.ndarray:
        r = self.rtt
        xd = history(t - r)
        w, tq, s = x
        w_d = w if self.approximate_self_delay else xd[0]
        s_d = xd[2]
        p = self.l_pert * (s_d - self.t_min)
        if self.clamp:
            p = min(1.0, max(0.0, p))
            w = max(w, 0.0)
        dw = 1.0 / r - self.beta_decrease * p * w * w_d / r
        n = self.n_of_t(t) if self.n_of_t is not None else self.n_flows
        dtq = n * w / (r * self.capacity) - 1.0
        if self.clamp and tq <= 0.0 and dtq < 0.0:
            dtq = 0.0
        ds = self.k_lpf * (x[2] - tq)
        return np.array([dw, dtq, ds])

    def simulate(
        self,
        duration: float,
        dt: float = 1e-3,
        x0: Optional[Tuple[float, float, float]] = None,
        method: str = "rk4",
    ) -> DdeSolution:
        """Integrate the DDE from *x0* (paper Figure 13 uses (1, 1, 1))."""
        start = np.array(x0 if x0 is not None else (1.0, 1.0, 1.0), dtype=float)
        return integrate_dde(self.rhs, start, (0.0, duration), dt, method=method)


# ----------------------------------------------------------------------
# batched integration across a parameter sweep
# ----------------------------------------------------------------------
def simulate_batch(
    models: Sequence[PertRedFluidModel],
    duration: float,
    dt: float = 1e-3,
    x0=None,
    method: str = "rk4",
) -> DdeBatchSolution:
    """Integrate many :class:`PertRedFluidModel` instances in lockstep.

    All members share the time grid but may differ in every numeric
    parameter, including the RTT (per-member delayed-time queries).  The
    right-hand side evaluates the same arithmetic as
    :meth:`PertRedFluidModel.rhs` elementwise, so member *b*'s trajectory
    is bit-identical to ``models[b].simulate(duration, dt, ...)`` — this
    is a throughput optimisation for stability sweeps (Figure 13's
    parameter grids), not an approximation.

    Structural options must be uniform across the batch: ``clamp`` and
    ``approximate_self_delay`` flags must agree, and time-varying flow
    counts (``n_of_t``) are not supported (the closure would have to be
    evaluated per member anyway, forfeiting the vectorisation).

    *x0* is either one ``(3,)`` start shared by all members or a
    ``(B, 3)`` array; default ``(1, 1, 1)`` as in Figure 13.
    """
    if not models:
        raise ValueError("need at least one model")
    clamp = models[0].clamp
    approx = models[0].approximate_self_delay
    for m in models:
        if m.clamp != clamp or m.approximate_self_delay != approx:
            raise ValueError(
                "batch members must share clamp/approximate_self_delay flags"
            )
        if m.n_of_t is not None:
            raise ValueError("n_of_t models cannot be batch-integrated")
    batch = len(models)
    # Parameter vectors come from the scalar properties so batch and
    # scalar runs start from exactly the same float64 constants.
    r = np.array([m.rtt for m in models])
    cap = np.array([m.capacity for m in models])
    n_flows = np.array([float(m.n_flows) for m in models])
    beta = np.array([m.beta_decrease for m in models])
    t_min = np.array([m.t_min for m in models])
    l_arr = np.array([m.l_pert for m in models])
    k_arr = np.array([m.k_lpf for m in models])

    def rhs(t: float, x: np.ndarray, history) -> np.ndarray:
        xd = history(t - r)
        w = x[:, 0]
        tq = x[:, 1]
        w_d = w if approx else xd[:, 0]
        s_d = xd[:, 2]
        p = l_arr * (s_d - t_min)
        if clamp:
            p = np.minimum(1.0, np.maximum(0.0, p))
            w = np.maximum(w, 0.0)
        dw = 1.0 / r - beta * p * w * w_d / r
        dtq = n_flows * w / (r * cap) - 1.0
        if clamp:
            dtq = np.where((tq <= 0.0) & (dtq < 0.0), 0.0, dtq)
        ds = k_arr * (x[:, 2] - tq)
        return np.stack([dw, dtq, ds], axis=1)

    start = np.array(x0 if x0 is not None else (1.0, 1.0, 1.0), dtype=float)
    if start.ndim == 1:
        start = np.broadcast_to(start, (batch, start.size))
    elif start.shape[0] != batch:
        raise ValueError(f"x0 has {start.shape[0]} rows for {batch} models")
    return integrate_dde_batch(rhs, start, (0.0, duration), dt, method=method)
