"""Spectral stability analysis of linear delay systems.

An independent check of the paper's stability results: instead of
integrating trajectories and eyeballing convergence (Figure 13) or
applying Theorem 1's sufficient condition, we linearize the PERT/RED
fluid model around its equilibrium,

    x'(t) = A x(t) + B x(t - R),

and compute the rightmost characteristic roots directly via Chebyshev
pseudospectral collocation (Breda, Maset & Vermiglio's method): the
infinitesimal generator of the DDE is discretised on ``m+1`` Chebyshev
nodes over [-R, 0], and the eigenvalues of the resulting
``n(m+1) x n(m+1)`` matrix approximate the DDE spectrum — the rightmost
ones to machine precision for modest ``m``.

Local asymptotic stability holds iff the rightmost root has negative
real part, which gives an *exact* (up to discretisation) boundary to
compare against Theorem 1's conservative one.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .pert_pi import PertPiFluidModel
from .pert_red import PertRedFluidModel

__all__ = [
    "cheb",
    "rightmost_root",
    "pert_red_linearization",
    "pert_red_rightmost_root",
    "pert_red_spectral_boundary",
    "pert_pi_linearization",
    "pert_pi_rightmost_root",
]


def cheb(m: int) -> Tuple[np.ndarray, np.ndarray]:
    """Chebyshev differentiation matrix and nodes on [-1, 1] (Trefethen).

    Returns ``(D, x)`` with ``x[0] = 1`` down to ``x[m] = -1``.
    """
    if m == 0:
        return np.zeros((1, 1)), np.array([1.0])
    x = np.cos(np.pi * np.arange(m + 1) / m)
    c = np.hstack([2.0, np.ones(m - 1), 2.0]) * (-1.0) ** np.arange(m + 1)
    X = np.tile(x, (m + 1, 1)).T
    dX = X - X.T
    D = np.outer(c, 1.0 / c) / (dX + np.eye(m + 1))
    D -= np.diag(D.sum(axis=1))
    return D, x


def rightmost_root(A: np.ndarray, B: np.ndarray, tau: float, m: int = 24) -> complex:
    """Rightmost characteristic root of ``x' = A x(t) + B x(t - tau)``.

    Parameters
    ----------
    A, B:
        System matrices (n x n).
    tau:
        The delay (> 0).  With ``tau == 0`` the result is simply the
        rightmost eigenvalue of ``A + B``.
    m:
        Chebyshev discretisation order; 20-30 resolves the dominant
        roots of small systems to high accuracy.
    """
    A = np.asarray(A, dtype=float)
    B = np.asarray(B, dtype=float)
    n = A.shape[0]
    if A.shape != (n, n) or B.shape != (n, n):
        raise ValueError("A and B must be square and same-sized")
    if tau < 0:
        raise ValueError("tau must be non-negative")
    if tau == 0:
        eigs = np.linalg.eigvals(A + B)
        return eigs[np.argmax(eigs.real)]
    D, _ = cheb(m)
    # nodes map [-1, 1] -> [-tau, 0]; node 0 corresponds to t = 0
    D = D * (2.0 / tau)
    big = np.kron(D, np.eye(n))
    # replace the first block row with the DDE's boundary condition:
    # x'(0) = A x(0) + B x(-tau)
    big[:n, :] = 0.0
    big[:n, :n] = A
    big[:n, -n:] = B
    eigs = np.linalg.eigvals(big)
    return eigs[np.argmax(eigs.real)]


def pert_red_linearization(model: PertRedFluidModel) -> Tuple[np.ndarray, np.ndarray]:
    """Linearize the PERT/RED fluid model (eq. 14) at its equilibrium.

    State order (w, Tq, s); returns (A, B) of the linear delay system.
    """
    w_star, p_star, _ = model.equilibrium()
    r = model.rtt
    c = model.capacity
    n = model.n_flows
    lp = model.l_pert
    k = model.k_lpf
    beta = model.beta_decrease
    a11 = -beta * p_star * w_star / r
    A = np.array([
        [a11 if not model.approximate_self_delay else 2 * a11, 0.0, 0.0],
        [n / (r * c), 0.0, 0.0],
        [0.0, -k, k],
    ])
    b11 = 0.0 if model.approximate_self_delay else a11
    B = np.array([
        [b11, 0.0, -beta * lp * w_star**2 / r],
        [0.0, 0.0, 0.0],
        [0.0, 0.0, 0.0],
    ])
    return A, B


def pert_red_rightmost_root(model: PertRedFluidModel, m: int = 24) -> complex:
    """Rightmost characteristic root of the linearized PERT/RED model."""
    A, B = pert_red_linearization(model)
    return rightmost_root(A, B, model.rtt, m=m)


def pert_pi_linearization(model: PertPiFluidModel) -> Tuple[np.ndarray, np.ndarray]:
    """Linearize the PERT/PI fluid model at its equilibrium.

    State order (w, Tq, p).  Window dynamics follow eq. (3) with
    β = 0.5 (the analysis setting); the controller contributes
    p' = K (Tq' + (Tq - Tq*)/m) with Tq' = N w /(RC) - 1.
    """
    w_star, p_star, _ = model.equilibrium()
    r = model.rtt
    c = model.capacity
    n = model.n_flows
    k = model.k
    m = model.m
    a11 = -p_star * w_star / (2.0 * r)
    dtq_dw = n / (r * c)
    A = np.array([
        [a11, 0.0, -w_star**2 / (2.0 * r)],
        [dtq_dw, 0.0, 0.0],
        [k * dtq_dw, k / m, 0.0],
    ])
    B = np.array([
        [a11, 0.0, 0.0],
        [0.0, 0.0, 0.0],
        [0.0, 0.0, 0.0],
    ])
    return A, B


def pert_pi_rightmost_root(model: PertPiFluidModel, m: int = 24) -> complex:
    """Rightmost characteristic root of the linearized PERT/PI model."""
    A, B = pert_pi_linearization(model)
    return rightmost_root(A, B, model.rtt, m=m)


def pert_red_spectral_boundary(
    lo: float,
    hi: float,
    tol: float = 1e-4,
    m: int = 24,
    **model_kwargs,
) -> float:
    """Bisect the RTT at which the linearized model loses stability."""

    def real_part(rtt: float) -> float:
        from .registry import make_fluid_model  # local: registry imports us

        return pert_red_rightmost_root(
            make_fluid_model("pert_red", rtt=rtt, **model_kwargs), m=m
        ).real

    if real_part(lo) >= 0:
        raise ValueError("model is already unstable at the lower bound")
    if real_part(hi) < 0:
        raise ValueError("model is still stable at the upper bound")
    while hi - lo > tol:
        mid = (lo + hi) / 2.0
        if real_part(mid) < 0:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2.0
