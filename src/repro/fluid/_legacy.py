"""Deprecation bookkeeping for direct fluid-model construction.

The canonical way to build a fluid model is
:func:`repro.fluid.make_fluid_model`; the per-class dataclass
constructors remain as thin shims that warn once per class per process
when called directly.  The registry state lives here — not in
``registry.py`` — because every concrete model module has to call the
hook from its ``__post_init__``, and importing the registry from there
would be a cycle.  This mirrors the queue-discipline shims in
:mod:`repro.sim.queues.base`.
"""

from __future__ import annotations

import warnings
from contextlib import contextmanager
from typing import Iterator, Set, Type

__all__ = [
    "factory_construction",
    "maybe_warn_legacy_init",
    "reset_legacy_warnings",
]

#: classes whose direct construction is deprecated (populated by
#: ``repro.fluid.registry`` at import time)
_LEGACY_SHIMMED: Set[type] = set()
#: class names that have already warned this process
_LEGACY_WARNED: Set[str] = set()
#: >0 while make_fluid_model() itself is constructing (suppresses the warning)
_legacy_suppressed = 0


@contextmanager
def factory_construction() -> Iterator[None]:
    """Mark constructions performed by make_fluid_model() as non-deprecated."""
    global _legacy_suppressed
    _legacy_suppressed += 1
    try:
        yield
    finally:
        _legacy_suppressed -= 1


def maybe_warn_legacy_init(cls: Type) -> None:
    """Emit the once-per-class warning for a direct constructor call."""
    if _legacy_suppressed or cls not in _LEGACY_SHIMMED:
        return
    if cls.__name__ in _LEGACY_WARNED:
        return
    _LEGACY_WARNED.add(cls.__name__)
    warnings.warn(
        f"constructing {cls.__name__} directly is deprecated; use "
        f"repro.fluid.make_fluid_model(name, **params) instead",
        DeprecationWarning,
        stacklevel=3,
    )


def reset_legacy_warnings() -> None:
    """Forget which classes have warned (for tests of the shims)."""
    _LEGACY_WARNED.clear()
