"""Fluid model of router-based TCP/RED (Misra, Gong & Towsley 2000).

The comparison point for the paper's Section 5.4 discussion: identical
structure to the PERT/RED model except that

* the drop probability is computed from the *queue length* (packets),
  so the curve slope is ``L_RED = max_p / (max_th - min_th)`` per packet
  — this is where the stability condition picks up a factor C³ instead
  of PERT's C², and
* the probability reaching the sender is delayed by one RTT
  (``p(t - R)``), because marking happens at the router.

State vector: x1 = W (packets), x2 = q (packets), x3 = smoothed queue
average (packets).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from . import _legacy
from .dde import DdeSolution, integrate_dde

__all__ = ["TcpRedFluidModel"]


@dataclass
class TcpRedFluidModel:
    """TCP/RED fluid model.

    ``min_th``/``max_th`` are queue-length thresholds in packets and
    ``delta`` is RED's sampling interval (≈ 1/C at the router).
    """

    capacity: float = 100.0
    n_flows: int = 5
    rtt: float = 0.1
    p_max: float = 0.1
    min_th: float = 5.0
    max_th: float = 10.0
    alpha: float = 0.99
    delta: Optional[float] = None
    clamp: bool = False

    def __post_init__(self) -> None:
        _legacy.maybe_warn_legacy_init(type(self))
        if self.capacity <= 0 or self.n_flows <= 0 or self.rtt <= 0:
            raise ValueError("capacity, n_flows and rtt must be positive")
        if self.delta is None:
            # RED averages once per packet: delta ~= 1/C.
            self.delta = 1.0 / self.capacity

    @property
    def l_red(self) -> float:
        """Slope of RED's marking curve in probability per packet."""
        return self.p_max / (self.max_th - self.min_th)

    @property
    def k_lpf(self) -> float:
        return math.log(self.alpha) / self.delta

    def equilibrium(self) -> Tuple[float, float, float]:
        """(W*, p*, q*) with q* = min_th + p*/L_RED."""
        w_star = self.rtt * self.capacity / self.n_flows
        p_star = 2.0 * self.n_flows**2 / (self.rtt**2 * self.capacity**2)
        q_star = self.min_th + p_star / self.l_red
        return w_star, p_star, q_star

    def equilibrium_state(self) -> Tuple[float, float, float]:
        """:meth:`equilibrium` mapped onto the state vector (W, q, q_avg)."""
        w_star, _, q_star = self.equilibrium()
        return w_star, q_star, q_star

    def rhs(self, t: float, x: np.ndarray, history) -> np.ndarray:
        r = self.rtt
        xd = history(t - r)
        w, q, s = x
        w_d, s_d = xd[0], xd[2]
        p = self.l_red * (s_d - self.min_th)  # router marks, felt an RTT later
        if self.clamp:
            p = min(1.0, max(0.0, p))
            w = max(w, 0.0)
        dw = 1.0 / r - p * w * w_d / (2.0 * r)
        dq = self.n_flows * w / r - self.capacity
        if self.clamp and q <= 0.0 and dq < 0.0:
            dq = 0.0
        ds = self.k_lpf * (s - q)
        return np.array([dw, dq, ds])

    def simulate(
        self,
        duration: float,
        dt: float = 1e-3,
        x0: Optional[Tuple[float, float, float]] = None,
        method: str = "rk4",
    ) -> DdeSolution:
        start = np.array(x0 if x0 is not None else (1.0, 1.0, 1.0), dtype=float)
        return integrate_dde(self.rhs, start, (0.0, duration), dt, method=method)
