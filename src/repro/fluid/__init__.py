"""Fluid-flow models and stability theory (paper Sections 5-6)."""

from .dde import DdeBatchSolution, DdeSolution, integrate_dde, integrate_dde_batch
from .pert_pi import PertPiFluidModel
from .pert_red import PertRedFluidModel, simulate_batch
from .rates import RateSegment, RateTrajectory, equilibrium_rate, rate_trajectory
from .registry import (
    FLUID_MODELS,
    FluidModel,
    fluid_model_params,
    make_fluid_model,
    reset_legacy_warnings,
)
from .spectrum import (
    pert_red_linearization,
    pert_red_rightmost_root,
    pert_red_spectral_boundary,
    rightmost_root,
)
from .stability import (
    classify_trajectories,
    equilibrium,
    find_stability_boundary,
    k_lpf,
    l_pert,
    min_delta,
    omega_g,
    pert_pi_gains,
    scale_invariant_holds,
    theorem1_holds,
    trajectory_is_stable,
)
from .tcp_red import TcpRedFluidModel

__all__ = [
    "integrate_dde",
    "integrate_dde_batch",
    "DdeSolution",
    "DdeBatchSolution",
    "simulate_batch",
    "FluidModel",
    "FLUID_MODELS",
    "make_fluid_model",
    "fluid_model_params",
    "reset_legacy_warnings",
    "RateSegment",
    "RateTrajectory",
    "rate_trajectory",
    "equilibrium_rate",
    "classify_trajectories",
    "PertRedFluidModel",
    "TcpRedFluidModel",
    "PertPiFluidModel",
    "l_pert",
    "k_lpf",
    "omega_g",
    "theorem1_holds",
    "min_delta",
    "scale_invariant_holds",
    "pert_pi_gains",
    "equilibrium",
    "trajectory_is_stable",
    "find_stability_boundary",
    "rightmost_root",
    "pert_red_linearization",
    "pert_red_rightmost_root",
    "pert_red_spectral_boundary",
]
