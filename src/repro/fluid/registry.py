"""Unified fluid-model construction: the ``make_fluid_model`` registry.

Historically the three fluid models (:class:`TcpRedFluidModel`,
:class:`PertRedFluidModel`, :class:`PertPiFluidModel`) were constructed
ad hoc, with call sites hard-coding the class and its keyword
conventions.  This module replaces that with the same declarative shape
the queue disciplines use (:func:`repro.sim.queues.make_queue`):

>>> model = make_fluid_model("pert_red", capacity=1000.0, n_flows=50)

``make_fluid_model`` validates every parameter against the implementing
dataclass's constructor signature and rejects unknown model names and
parameters eagerly, with the valid names listed.  Direct constructor
calls (``PertRedFluidModel(...)``) still work but emit one
:class:`DeprecationWarning` per class per process.

The :class:`FluidModel` protocol documents the surface every registered
model shares — the hybrid engine (:mod:`repro.hybrid`) and the rate
export (:mod:`repro.fluid.rates`) are written against it, never against
a concrete class.
"""

from __future__ import annotations

import inspect
from typing import Any, Dict, Protocol, Tuple, Type, runtime_checkable

import numpy as np

from . import _legacy
from ._legacy import reset_legacy_warnings
from .dde import DdeSolution
from .pert_pi import PertPiFluidModel
from .pert_red import PertRedFluidModel
from .tcp_red import TcpRedFluidModel

__all__ = [
    "FluidModel",
    "FLUID_MODELS",
    "make_fluid_model",
    "fluid_model_params",
    "reset_legacy_warnings",
]


@runtime_checkable
class FluidModel(Protocol):
    """Shared surface of every registered fluid model.

    A fluid model describes ``n_flows`` identical long-lived flows
    sharing a bottleneck of ``capacity`` packets/second over a
    round-trip delay ``rtt``; its state vector always starts with the
    per-flow congestion window W(t) in packets, so the aggregate
    arrival rate at the bottleneck is ``n_flows * W(t) / rtt``
    regardless of the concrete model (see :mod:`repro.fluid.rates`).
    """

    capacity: float
    n_flows: int
    rtt: float

    def equilibrium(self) -> Tuple[float, float, float]:
        """Stationary point; first component is always W*."""
        ...

    def equilibrium_state(self) -> Tuple[float, float, float]:
        """:meth:`equilibrium` mapped onto the model's state vector."""
        ...

    def rhs(self, t: float, x: np.ndarray, history) -> np.ndarray:
        """DDE right-hand side (see :func:`repro.fluid.integrate_dde`)."""
        ...

    def simulate(self, duration: float, dt: float = 1e-3, x0=None,
                 method: str = "rk4") -> DdeSolution:
        """Integrate the model's DDE from ``x0`` over ``duration``."""
        ...


#: model name -> implementing class
FLUID_MODELS: Dict[str, Type] = {
    "tcp_red": TcpRedFluidModel,
    "pert_red": PertRedFluidModel,
    "pert_pi": PertPiFluidModel,
}

# Register the concrete classes so their __post_init__ warns on direct
# construction (make_fluid_model suppresses the warning for itself).
for _cls in FLUID_MODELS.values():
    _legacy._LEGACY_SHIMMED.add(_cls)
del _cls


def fluid_model_params(name: str) -> Dict[str, inspect.Parameter]:
    """Constructor keywords accepted by the named model."""
    cls = FLUID_MODELS.get(name)
    if cls is None:
        raise ValueError(
            f"unknown fluid model {name!r}; valid: {sorted(FLUID_MODELS)}"
        )
    sig = inspect.signature(cls.__init__)
    return {n: p for n, p in sig.parameters.items() if n != "self"}


def make_fluid_model(name: str, **params: Any) -> FluidModel:
    """Build the fluid model registered under *name*.

    Parameters are validated against the implementing dataclass's
    constructor signature; unknown names raise :class:`ValueError`
    listing the valid ones (mirroring
    :class:`repro.sim.queues.QueueConfig`), so a typo fails at
    construction rather than as a silently ignored knob.
    """
    allowed = fluid_model_params(name)
    unknown = sorted(set(params) - set(allowed))
    if unknown:
        raise ValueError(
            f"unknown parameter(s) {unknown} for fluid model {name!r}; "
            f"valid: {sorted(allowed)}"
        )
    cls = FLUID_MODELS[name]
    with _legacy.factory_construction():
        return cls(**params)
