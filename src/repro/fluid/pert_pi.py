"""Fluid model of PERT emulating a PI controller (paper Section 6).

Window dynamics are shared with the PERT/RED model; the response
probability is driven by the continuous PI controller of eq. (16)/(17):

    p(t) = K * ( dTq(t) + (1/m) * ∫ dTq dt ),   dTq = Tq - Tq*

which in differential form (taken around p* = 0) is

    p'(t) = K * ( Tq'(t) + (Tq(t) - Tq*) / m ).

State vector: x1 = W (packets), x2 = Tq (seconds), x3 = p (probability).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from . import _legacy
from .dde import DdeSolution, integrate_dde

__all__ = ["PertPiFluidModel"]


@dataclass
class PertPiFluidModel:
    """PERT/PI fluid model with Theorem 2-style gains.

    ``k`` and ``m`` are the PI gains; ``tq_ref`` the queuing-delay target.
    """

    capacity: float = 100.0
    n_flows: int = 5
    rtt: float = 0.1
    k: float = 0.1
    m: float = 1.0
    tq_ref: float = 0.05
    clamp: bool = True

    def __post_init__(self) -> None:
        _legacy.maybe_warn_legacy_init(type(self))
        if self.capacity <= 0 or self.n_flows <= 0 or self.rtt <= 0:
            raise ValueError("capacity, n_flows and rtt must be positive")
        if self.k <= 0 or self.m <= 0:
            raise ValueError("PI gains must be positive")

    def equilibrium(self) -> Tuple[float, float, float]:
        """(W*, p*, Tq*): the PI integrator forces Tq -> tq_ref."""
        w_star = self.rtt * self.capacity / self.n_flows
        p_star = 2.0 * self.n_flows**2 / (self.rtt**2 * self.capacity**2)
        return w_star, p_star, self.tq_ref

    def equilibrium_state(self) -> Tuple[float, float, float]:
        """:meth:`equilibrium` mapped onto the state vector (W, Tq, p)."""
        w_star, p_star, tq_star = self.equilibrium()
        return w_star, tq_star, p_star

    def rhs(self, t: float, x: np.ndarray, history) -> np.ndarray:
        r = self.rtt
        xd = history(t - r)
        w, tq, p = x
        w_d = xd[0]
        p_eff = min(1.0, max(0.0, p)) if self.clamp else p
        dw = 1.0 / r - p_eff * w * w_d / (2.0 * r)
        dtq = self.n_flows * w / (r * self.capacity) - 1.0
        if self.clamp and tq <= 0.0 and dtq < 0.0:
            dtq = 0.0
        dp = self.k * (dtq + (tq - self.tq_ref) / self.m)
        if self.clamp:
            if p >= 1.0 and dp > 0.0:
                dp = 0.0
            elif p <= 0.0 and dp < 0.0:
                dp = 0.0
        return np.array([dw, dtq, dp])

    def simulate(
        self,
        duration: float,
        dt: float = 1e-3,
        x0: Optional[Tuple[float, float, float]] = None,
        method: str = "rk4",
    ) -> DdeSolution:
        start = np.array(x0 if x0 is not None else (1.0, 0.0, 0.0), dtype=float)
        return integrate_dde(self.rhs, start, (0.0, duration), dt, method=method)
