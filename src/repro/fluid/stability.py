"""Stability theory of PERT (paper Theorems 1 and 2).

Implements, symbol for symbol, the conditions of Section 5.2:

* ``l_pert``  — L_PERT = p_max / (T_max - T_min)                (eq. 10)
* ``k_lpf``   — K = ln(alpha) / delta                           (eq. 10)
* ``omega_g`` — w_g = 0.1 * min( 2N⁻/(R⁺²C), 1/R⁺ )            (eq. 12)
* ``theorem1_holds`` — L R⁺³C² / (2N⁻)² <= sqrt(w_g²/K² + 1)    (eq. 11)
* ``min_delta`` — the sampling-interval guideline               (eq. 13)
* ``scale_invariant_holds`` — the C-independent condition when
  C/N = sigma is constant                                       (eq. 15)
* ``pert_pi_gains`` — Theorem 2's (m, K) schedule               (eq. 21)

plus an empirical stability classifier for DDE trajectories, used to
locate the stability boundary the way the paper does in Figure 13(b-d).
"""

from __future__ import annotations

import math
from typing import Callable, Tuple

import numpy as np

from .dde import DdeBatchSolution, DdeSolution

__all__ = [
    "l_pert",
    "k_lpf",
    "omega_g",
    "theorem1_holds",
    "min_delta",
    "scale_invariant_holds",
    "pert_pi_gains",
    "equilibrium",
    "trajectory_is_stable",
    "classify_trajectories",
    "find_stability_boundary",
]


def l_pert(p_max: float, t_min: float, t_max: float) -> float:
    """Slope of the emulated RED curve: p_max / (T_max - T_min)."""
    if t_max <= t_min:
        raise ValueError("need t_max > t_min")
    return p_max / (t_max - t_min)


def k_lpf(alpha: float, delta: float) -> float:
    """Continuous-time LPF pole K = ln(alpha)/delta (negative)."""
    if not 0 < alpha < 1:
        raise ValueError("alpha must be in (0, 1)")
    if delta <= 0:
        raise ValueError("delta must be positive")
    return math.log(alpha) / delta


def omega_g(n_minus: float, r_plus: float, capacity: float) -> float:
    """Crossover-frequency bound w_g of eq. (12)."""
    if n_minus <= 0 or r_plus <= 0 or capacity <= 0:
        raise ValueError("arguments must be positive")
    return 0.1 * min(2.0 * n_minus / (r_plus**2 * capacity), 1.0 / r_plus)


def theorem1_holds(
    capacity: float,
    n_minus: float,
    r_plus: float,
    p_max: float = 0.05,
    t_min: float = 0.005,
    t_max: float = 0.010,
    alpha: float = 0.99,
    delta: float = 1e-3,
) -> bool:
    """Sufficient local-stability condition of Theorem 1 (eq. 11)."""
    lp = l_pert(p_max, t_min, t_max)
    k = k_lpf(alpha, delta)
    wg = omega_g(n_minus, r_plus, capacity)
    lhs = lp * r_plus**3 * capacity**2 / (2.0 * n_minus) ** 2
    rhs = math.sqrt(wg**2 / k**2 + 1.0)
    return lhs <= rhs


def min_delta(
    capacity: float,
    n_minus: float,
    r_plus: float,
    p_max: float = 0.1,
    t_min: float = 0.05,
    t_max: float = 0.1,
    alpha: float = 0.99,
) -> float:
    """Minimum stable sampling interval δ of eq. (13).

    Returns 0 when the square-root argument is non-positive, i.e. the
    condition holds for every δ (the gain margin is already sufficient).
    """
    lp = l_pert(p_max, t_min, t_max)
    wg = omega_g(n_minus, r_plus, capacity)
    arg = lp**2 * r_plus**6 * capacity**4 - 16.0 * n_minus**4
    if arg <= 0:
        return 0.0
    return -math.log(alpha) / (4.0 * n_minus**2 * wg) * math.sqrt(arg)


def scale_invariant_holds(
    sigma: float,
    r_plus: float,
    p_max: float = 0.05,
    t_min: float = 0.005,
    t_max: float = 0.010,
    alpha: float = 0.99,
    delta: float = 1e-3,
) -> bool:
    """Eq. (15): the condition when C/N = sigma is held constant.

        L_PERT σ² R⁺ <= 4 sqrt( 0.04 / (σ² K² R⁺⁴) + 1 )
    """
    if sigma <= 0 or r_plus <= 0:
        raise ValueError("sigma and r_plus must be positive")
    lp = l_pert(p_max, t_min, t_max)
    k = k_lpf(alpha, delta)
    lhs = lp * sigma**2 * r_plus
    rhs = 4.0 * math.sqrt(0.04 / (sigma**2 * k**2 * r_plus**4) + 1.0)
    return lhs <= rhs


def pert_pi_gains(
    capacity: float,
    n_minus: float,
    r_plus: float,
    r_star: float = None,
) -> Tuple[float, float]:
    """Theorem 2's PI gain schedule (eq. 21): returns (k, m).

        m = 2 N⁻ / (R⁺² C)
        K = m * |j R* m + 1| / ( R⁺³ C² / (2 N⁻)² )
          = m * sqrt((R* m)² + 1) * (2 N⁻)² / (R⁺³ C²)
    """
    if capacity <= 0 or n_minus <= 0 or r_plus <= 0:
        raise ValueError("arguments must be positive")
    r_star = r_star if r_star is not None else r_plus
    m = 2.0 * n_minus / (r_plus**2 * capacity)
    gain_denom = r_plus**3 * capacity**2 / (2.0 * n_minus) ** 2
    k = m * math.hypot(r_star * m, 1.0) / gain_denom
    return k, m


def equilibrium(capacity: float, n_flows: float, rtt: float) -> Tuple[float, float]:
    """Paper eq. (9): (W*, p*) = (RC/N, 2N²/(R²C²))."""
    if capacity <= 0 or n_flows <= 0 or rtt <= 0:
        raise ValueError("arguments must be positive")
    w_star = rtt * capacity / n_flows
    p_star = 2.0 * n_flows**2 / (rtt**2 * capacity**2)
    return w_star, p_star


# ----------------------------------------------------------------------
# empirical classification of DDE trajectories
# ----------------------------------------------------------------------
def trajectory_is_stable(
    sol: DdeSolution,
    component: int = 0,
    settle_fraction: float = 0.5,
    tolerance: float = 0.02,
) -> bool:
    """Heuristic: does the trajectory converge rather than oscillate?

    Splits the post-transient part (after ``settle_fraction`` of the run)
    in half and compares peak-to-peak amplitudes: decaying (or already
    flat relative to the mean) counts as stable, sustained or growing
    oscillation as unstable.  This mirrors the visual classification of
    the paper's Figure 13(b-d).
    """
    y = sol.component(component)
    n = len(y)
    start = int(n * settle_fraction)
    tail = y[start:]
    if len(tail) < 8:
        raise ValueError("trajectory too short to classify")
    half = len(tail) // 2
    first, second = tail[:half], tail[half:]
    amp1 = float(np.ptp(first))
    amp2 = float(np.ptp(second))
    scale = max(abs(float(np.mean(tail))), 1e-12)
    if amp2 / scale < tolerance:
        return True
    return amp2 < 0.9 * amp1


def classify_trajectories(
    sol: DdeBatchSolution,
    component: int = 0,
    settle_fraction: float = 0.5,
    tolerance: float = 0.02,
) -> np.ndarray:
    """Vectorised :func:`trajectory_is_stable` over a batched solution.

    Applies the identical peak-to-peak decay test to every member of a
    :class:`~repro.fluid.dde.DdeBatchSolution` (e.g. one produced by
    :func:`repro.fluid.pert_red.simulate_batch` over a parameter grid)
    in a handful of array reductions, returning a boolean array of shape
    ``(batch,)``.  Member *b*'s verdict equals
    ``trajectory_is_stable(sol[b], ...)`` by construction.
    """
    y = sol.component(component)  # (len(t), batch)
    n = y.shape[0]
    start = int(n * settle_fraction)
    tail = y[start:]
    if tail.shape[0] < 8:
        raise ValueError("trajectory too short to classify")
    half = tail.shape[0] // 2
    first, second = tail[:half], tail[half:]
    amp1 = np.ptp(first, axis=0)
    amp2 = np.ptp(second, axis=0)
    scale = np.maximum(np.abs(np.mean(tail, axis=0)), 1e-12)
    return (amp2 / scale < tolerance) | (amp2 < 0.9 * amp1)


def find_stability_boundary(
    make_solution: Callable[[float], DdeSolution],
    lo: float,
    hi: float,
    tol: float = 1e-3,
    component: int = 0,
) -> float:
    """Bisect for the parameter value where trajectories turn unstable.

    ``make_solution(param)`` must be stable at *lo* and unstable at *hi*;
    returns the boundary estimate.  Used to empirically confirm the
    paper's ~171 ms delay boundary for the Figure 13 configuration.
    """
    if not trajectory_is_stable(make_solution(lo), component):
        raise ValueError("expected a stable trajectory at the lower bound")
    if trajectory_is_stable(make_solution(hi), component):
        raise ValueError("expected an unstable trajectory at the upper bound")
    while hi - lo > tol:
        mid = (lo + hi) / 2.0
        if trajectory_is_stable(make_solution(mid), component):
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2.0
