"""Fixed-step integrator for delay differential equations (DDEs).

The paper's Section 5 analyses PERT with a fluid model of the form

    x'(t) = f(t, x(t), x(t - R))

(a single constant delay R; the general interface below allows several).
We integrate with classical RK4 over a fixed grid, evaluating delayed
states by linear interpolation in the stored solution history — the same
method-of-steps approach Matlab's ``dde23`` uses, simplified to a fixed
step.  Before ``t0`` the history is the constant initial state, matching
the paper's simulations which start from a constant initial point.

Two integration entry points share the grid and arithmetic:

* :func:`integrate_dde` — one system, scalar time stepping; history
  lookups use O(1) uniform-grid index arithmetic (the grid is built by
  repeated ``t += dt``, so the arithmetic guess is corrected by a
  one-ulp fix-up loop to land on exactly the interval ``searchsorted``
  would pick).
* :func:`integrate_dde_batch` — B independent systems advanced together
  as ``(B, dim)`` array operations, each with its own delayed-time
  queries.  Every elementwise operation mirrors the scalar path, so a
  batch run is bit-identical to B scalar runs — the property
  ``tests/fluid/test_dde_batch.py`` pins exactly.
"""

from __future__ import annotations

from typing import Callable, Sequence, Tuple

import numpy as np

__all__ = [
    "DdeSolution",
    "DdeBatchSolution",
    "integrate_dde",
    "integrate_dde_batch",
]


class DdeSolution:
    """Dense output of a DDE integration.

    Attributes
    ----------
    t:
        1-D array of time points (uniform grid).
    y:
        2-D array, shape ``(len(t), dim)``.
    """

    def __init__(self, t: np.ndarray, y: np.ndarray):
        self.t = t
        self.y = y

    def __call__(self, ti: float) -> np.ndarray:
        """Linear interpolation of the solution at time *ti* (clamped)."""
        t = self.t
        if ti <= t[0]:
            return self.y[0]
        if ti >= t[-1]:
            return self.y[-1]
        idx = int(np.searchsorted(t, ti) - 1)
        frac = (ti - t[idx]) / (t[idx + 1] - t[idx])
        return self.y[idx] * (1 - frac) + self.y[idx + 1] * frac

    def component(self, i: int) -> np.ndarray:
        return self.y[:, i]


class _History:
    """Growable solution history with constant pre-initial values."""

    def __init__(self, t0: float, x0: np.ndarray, n_steps: int, dim: int,
                 dt: float):
        self.t0 = t0
        self.dt = dt
        self.ts = np.empty(n_steps + 1)
        self.xs = np.empty((n_steps + 1, dim))
        self.ts[0] = t0
        self.xs[0] = x0
        self.filled = 1

    def append(self, t: float, x: np.ndarray) -> None:
        self.ts[self.filled] = t
        self.xs[self.filled] = x
        self.filled += 1

    def eval(self, ti: float) -> np.ndarray:
        if ti <= self.t0:
            return self.xs[0]
        n = self.filled
        ts = self.ts
        if ti >= ts[n - 1]:
            # RK4 sub-steps may probe marginally past the stored history;
            # hold the last value (error is O(dt) on a smooth solution).
            return self.xs[n - 1]
        # O(1) uniform-grid lookup.  The grid is built by accumulated
        # ``t += dt``, so ``(ti - t0) / dt`` can be off by one interval;
        # the fix-up loops restore the exact invariant ``searchsorted``
        # establishes: ts[idx] < ti <= ts[idx + 1].
        idx = int((ti - self.t0) / self.dt)
        if idx > n - 2:
            idx = n - 2
        elif idx < 0:
            idx = 0
        while idx > 0 and ts[idx] >= ti:
            idx -= 1
        while ts[idx + 1] < ti:
            idx += 1
        frac = (ti - ts[idx]) / (ts[idx + 1] - ts[idx])
        return self.xs[idx] * (1 - frac) + self.xs[idx + 1] * frac


def integrate_dde(
    rhs: Callable[[float, np.ndarray, Callable[[float], np.ndarray]], np.ndarray],
    x0: Sequence[float],
    t_span: Tuple[float, float],
    dt: float,
    method: str = "rk4",
) -> DdeSolution:
    """Integrate ``x' = rhs(t, x, history)`` over *t_span* with step *dt*.

    Parameters
    ----------
    rhs:
        Callable receiving the current time, current state, and a
        ``history(t')`` function returning the (interpolated) state at
        any earlier time; must return the state derivative as an array.
    x0:
        Initial state; also the constant pre-history.
    method:
        ``"rk4"`` (default) or ``"euler"``.

    Returns
    -------
    DdeSolution with the full trajectory on the uniform grid.
    """
    if dt <= 0:
        raise ValueError("dt must be positive")
    if method not in ("rk4", "euler"):
        raise ValueError(f"unknown method {method!r}")
    t0, t1 = t_span
    if t1 <= t0:
        raise ValueError("t_span must be increasing")
    n_steps = int(round((t1 - t0) / dt))
    x = np.asarray(x0, dtype=float).copy()
    hist = _History(t0, x, n_steps, x.size, dt)
    t = t0
    for _ in range(n_steps):
        if method == "euler":
            x = x + dt * np.asarray(rhs(t, x, hist.eval))
        else:
            k1 = np.asarray(rhs(t, x, hist.eval))
            k2 = np.asarray(rhs(t + dt / 2, x + dt / 2 * k1, hist.eval))
            k3 = np.asarray(rhs(t + dt / 2, x + dt / 2 * k2, hist.eval))
            k4 = np.asarray(rhs(t + dt, x + dt * k3, hist.eval))
            x = x + dt / 6.0 * (k1 + 2 * k2 + 2 * k3 + k4)
        t += dt
        hist.append(t, x)
    return DdeSolution(hist.ts[: hist.filled], hist.xs[: hist.filled])


# ----------------------------------------------------------------------
# batched integration: B independent systems as (B, dim) array ops
# ----------------------------------------------------------------------
class DdeBatchSolution:
    """Dense output of a batched DDE integration.

    Attributes
    ----------
    t:
        1-D array of time points (uniform grid, shared by the batch).
    y:
        3-D array, shape ``(len(t), batch, dim)``.
    """

    def __init__(self, t: np.ndarray, y: np.ndarray):
        self.t = t
        self.y = y

    @property
    def batch_size(self) -> int:
        return self.y.shape[1]

    def __len__(self) -> int:
        return self.y.shape[1]

    def __getitem__(self, b: int) -> DdeSolution:
        """Member *b*'s trajectory as an ordinary :class:`DdeSolution`."""
        return DdeSolution(self.t, self.y[:, b, :])

    def component(self, i: int) -> np.ndarray:
        """Component *i* of every member, shape ``(len(t), batch)``."""
        return self.y[:, :, i]


class _BatchHistory:
    """Per-member delayed-state lookup over the shared uniform grid.

    ``eval`` takes a ``(B,)`` vector of query times (or a scalar,
    broadcast) and gathers each member's interpolated state — the same
    guess-and-fix-up index arithmetic as :meth:`_History.eval`, applied
    elementwise, with identical interpolation arithmetic so batch and
    scalar runs agree bit for bit.
    """

    def __init__(self, t0: float, x0: np.ndarray, n_steps: int, dt: float):
        batch, dim = x0.shape
        self.t0 = t0
        self.dt = dt
        self.ts = np.empty(n_steps + 1)
        self.xs = np.empty((n_steps + 1, batch, dim))
        self.ts[0] = t0
        self.xs[0] = x0
        self.filled = 1
        self._rows = np.arange(batch)

    def append(self, t: float, x: np.ndarray) -> None:
        self.ts[self.filled] = t
        self.xs[self.filled] = x
        self.filled += 1

    def eval(self, ti) -> np.ndarray:
        rows = self._rows
        tq = np.broadcast_to(np.asarray(ti, dtype=float), rows.shape)
        n = self.filled
        if n == 1:
            # only the pre-history exists: every query clamps to it
            return self.xs[0].copy()
        ts = self.ts
        last = ts[n - 1]
        idx = ((tq - self.t0) / self.dt).astype(np.intp)
        np.clip(idx, 0, n - 2, out=idx)
        # fix-up to the searchsorted invariant ts[idx] < tq <= ts[idx+1]
        # (interior rows only; boundary rows are overwritten below, and
        # the clamp above keeps their idx in range)
        while True:
            dec = (idx > 0) & (ts[idx] >= tq)
            if not dec.any():
                break
            idx[dec] -= 1
        while True:
            inc = (idx < n - 2) & (ts[idx + 1] < tq) & (tq < last)
            if not inc.any():
                break
            idx[inc] += 1
        frac = (tq - ts[idx]) / (ts[idx + 1] - ts[idx])
        out = (self.xs[idx, rows] * (1 - frac)[:, None]
               + self.xs[idx + 1, rows] * frac[:, None])
        lo = tq <= self.t0
        if lo.any():
            out[lo] = self.xs[0, rows[lo]]
        hi = tq >= last
        if hi.any():
            out[hi] = self.xs[n - 1, rows[hi]]
        return out


def integrate_dde_batch(
    rhs: Callable[[float, np.ndarray, Callable], np.ndarray],
    x0: np.ndarray,
    t_span: Tuple[float, float],
    dt: float,
    method: str = "rk4",
) -> DdeBatchSolution:
    """Advance B independent DDE systems together as array operations.

    Parameters
    ----------
    rhs:
        Callable ``rhs(t, X, history) -> (B, dim)`` where ``X`` is the
        ``(B, dim)`` state block and ``history(t')`` accepts a scalar or
        a ``(B,)`` vector of per-member query times, returning the
        ``(B, dim)`` interpolated delayed states.
    x0:
        ``(B, dim)`` array of initial states (also the constant
        pre-history of each member).

    All members share the time grid; delays may differ per member via
    vector-valued history queries.  The stepping arithmetic mirrors
    :func:`integrate_dde` exactly, so the trajectory of member *b*
    equals a scalar integration of that member bit for bit.
    """
    if dt <= 0:
        raise ValueError("dt must be positive")
    if method not in ("rk4", "euler"):
        raise ValueError(f"unknown method {method!r}")
    t0, t1 = t_span
    if t1 <= t0:
        raise ValueError("t_span must be increasing")
    x = np.asarray(x0, dtype=float).copy()
    if x.ndim != 2:
        raise ValueError("x0 must have shape (batch, dim)")
    n_steps = int(round((t1 - t0) / dt))
    hist = _BatchHistory(t0, x, n_steps, dt)
    t = t0
    for _ in range(n_steps):
        if method == "euler":
            x = x + dt * np.asarray(rhs(t, x, hist.eval))
        else:
            k1 = np.asarray(rhs(t, x, hist.eval))
            k2 = np.asarray(rhs(t + dt / 2, x + dt / 2 * k1, hist.eval))
            k3 = np.asarray(rhs(t + dt / 2, x + dt / 2 * k2, hist.eval))
            k4 = np.asarray(rhs(t + dt, x + dt * k3, hist.eval))
            x = x + dt / 6.0 * (k1 + 2 * k2 + 2 * k3 + k4)
        t += dt
        hist.append(t, x)
    return DdeBatchSolution(hist.ts[: hist.filled], hist.xs[: hist.filled])
