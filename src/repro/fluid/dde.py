"""Fixed-step integrator for delay differential equations (DDEs).

The paper's Section 5 analyses PERT with a fluid model of the form

    x'(t) = f(t, x(t), x(t - R))

(a single constant delay R; the general interface below allows several).
We integrate with classical RK4 over a fixed grid, evaluating delayed
states by linear interpolation in the stored solution history — the same
method-of-steps approach Matlab's ``dde23`` uses, simplified to a fixed
step.  Before ``t0`` the history is the constant initial state, matching
the paper's simulations which start from a constant initial point.
"""

from __future__ import annotations

from typing import Callable, Sequence, Tuple

import numpy as np

__all__ = ["DdeSolution", "integrate_dde"]


class DdeSolution:
    """Dense output of a DDE integration.

    Attributes
    ----------
    t:
        1-D array of time points (uniform grid).
    y:
        2-D array, shape ``(len(t), dim)``.
    """

    def __init__(self, t: np.ndarray, y: np.ndarray):
        self.t = t
        self.y = y

    def __call__(self, ti: float) -> np.ndarray:
        """Linear interpolation of the solution at time *ti* (clamped)."""
        t = self.t
        if ti <= t[0]:
            return self.y[0]
        if ti >= t[-1]:
            return self.y[-1]
        idx = int(np.searchsorted(t, ti) - 1)
        frac = (ti - t[idx]) / (t[idx + 1] - t[idx])
        return self.y[idx] * (1 - frac) + self.y[idx + 1] * frac

    def component(self, i: int) -> np.ndarray:
        return self.y[:, i]


class _History:
    """Growable solution history with constant pre-initial values."""

    def __init__(self, t0: float, x0: np.ndarray, n_steps: int, dim: int):
        self.t0 = t0
        self.ts = np.empty(n_steps + 1)
        self.xs = np.empty((n_steps + 1, dim))
        self.ts[0] = t0
        self.xs[0] = x0
        self.filled = 1

    def append(self, t: float, x: np.ndarray) -> None:
        self.ts[self.filled] = t
        self.xs[self.filled] = x
        self.filled += 1

    def eval(self, ti: float) -> np.ndarray:
        if ti <= self.t0:
            return self.xs[0]
        n = self.filled
        ts = self.ts[:n]
        last = ts[n - 1]
        if ti >= last:
            # RK4 sub-steps may probe marginally past the stored history;
            # hold the last value (error is O(dt) on a smooth solution).
            return self.xs[n - 1]
        idx = int(np.searchsorted(ts, ti) - 1)
        frac = (ti - ts[idx]) / (ts[idx + 1] - ts[idx])
        return self.xs[idx] * (1 - frac) + self.xs[idx + 1] * frac


def integrate_dde(
    rhs: Callable[[float, np.ndarray, Callable[[float], np.ndarray]], np.ndarray],
    x0: Sequence[float],
    t_span: Tuple[float, float],
    dt: float,
    method: str = "rk4",
) -> DdeSolution:
    """Integrate ``x' = rhs(t, x, history)`` over *t_span* with step *dt*.

    Parameters
    ----------
    rhs:
        Callable receiving the current time, current state, and a
        ``history(t')`` function returning the (interpolated) state at
        any earlier time; must return the state derivative as an array.
    x0:
        Initial state; also the constant pre-history.
    method:
        ``"rk4"`` (default) or ``"euler"``.

    Returns
    -------
    DdeSolution with the full trajectory on the uniform grid.
    """
    if dt <= 0:
        raise ValueError("dt must be positive")
    if method not in ("rk4", "euler"):
        raise ValueError(f"unknown method {method!r}")
    t0, t1 = t_span
    if t1 <= t0:
        raise ValueError("t_span must be increasing")
    n_steps = int(round((t1 - t0) / dt))
    x = np.asarray(x0, dtype=float).copy()
    hist = _History(t0, x, n_steps, x.size)
    t = t0
    for _ in range(n_steps):
        if method == "euler":
            x = x + dt * np.asarray(rhs(t, x, hist.eval))
        else:
            k1 = np.asarray(rhs(t, x, hist.eval))
            k2 = np.asarray(rhs(t + dt / 2, x + dt / 2 * k1, hist.eval))
            k3 = np.asarray(rhs(t + dt / 2, x + dt / 2 * k2, hist.eval))
            k4 = np.asarray(rhs(t + dt, x + dt * k3, hist.eval))
            x = x + dt / 6.0 * (k1 + 2 * k2 + 2 * k3 + k4)
        t += dt
        hist.append(t, x)
    return DdeSolution(hist.ts[: hist.filled], hist.xs[: hist.filled])
