"""Dashboard CLI.

Usage::

    python -m repro.serve <run-dir> [--host H] [--port P] [--history F]

Serves the live dashboard for *run-dir* (a runner cache directory —
the ``--cache-dir`` of an experiments run).  Point a browser at the
printed URL; the page tails ``events.jsonl`` when a sweep writes one
(``REPRO_BUS=1``) and falls back to manifest-only reporting otherwise.
``--history`` additionally exposes a ``BENCH_history.jsonl`` perf
trajectory on ``/api/history``.  Stop with Ctrl-C.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .app import make_server

#: repo-root bench history (src/repro/serve/__main__.py -> three parents up)
_DEFAULT_HISTORY = Path(__file__).resolve().parents[3] / "BENCH_history.jsonl"


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve a live (or post-hoc) dashboard for a run directory.",
    )
    parser.add_argument("run_dir", help="runner cache directory to watch")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8350,
                        help="port to bind (0 = ephemeral; default 8350)")
    parser.add_argument("--history", nargs="?", const=str(_DEFAULT_HISTORY),
                        default=None, metavar="FILE",
                        help="expose a BENCH_history.jsonl on /api/history "
                             "(default file: the repo's)")
    args = parser.parse_args(argv)

    run_dir = Path(args.run_dir)
    if not run_dir.is_dir():
        print(f"error: {run_dir} is not a directory", file=sys.stderr)
        return 2
    server = make_server(run_dir, host=args.host, port=args.port,
                         history=args.history)
    host, port = server.server_address[:2]
    print(f"serving {run_dir} on http://{host}:{port}/  (Ctrl-C to stop)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nstopped")
    finally:
        server.shutdown()
        server.server_close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
