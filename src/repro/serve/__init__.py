"""Live sweep dashboard: tail a run directory over HTTP.

``python -m repro.serve <run-dir>`` serves a single-page dashboard plus
JSON APIs (``/api/runs``, ``/api/jobs``, ``/api/metrics``,
``/api/history``) and a Server-Sent Events stream (``/events``) for a
run directory — live while a sweep executes with ``REPRO_BUS`` on, or
after the fact as a forensic timeline.  Entirely stdlib
(``http.server``), entirely read-only against the run directory.

The pieces:

* :class:`repro.serve.view.RunView` — merges ``events.jsonl`` (the
  :mod:`repro.obs.bus` stream) with the on-disk manifests into job
  states and per-scheme metrics.
* :class:`repro.serve.app.MonitorServer` / :func:`make_server` /
  :func:`serve_in_background` — the HTTP layer; the experiment CLIs'
  ``--serve`` flag uses the background variant.
"""

from .app import MonitorServer, make_server, serve_in_background
from .view import RunView

__all__ = ["MonitorServer", "RunView", "make_server", "serve_in_background"]
