"""Stdlib HTTP server for the live sweep dashboard.

``python -m repro.serve <run-dir>`` binds a :class:`MonitorServer`
(a ``ThreadingHTTPServer``) whose handler exposes:

==================  ==================================================
``/``               the dashboard page (inline HTML/CSS/JS, no assets)
``/api/runs``       run-level summary + job-state counts + fleet rollup
``/api/jobs``       one JSON record per job key
``/api/metrics``    per-scheme rollup from the manifests on disk
``/api/history``    tail of the bench-history trajectory (if given)
``/events``         Server-Sent Events stream tailing ``events.jsonl``
==================  ==================================================

Everything is read-only against the run directory, so the server can
safely watch a sweep that is still executing.  The SSE stream starts at
the current end of the bus file (pass ``?replay=1`` to start from the
beginning) and sends a comment keepalive during idle stretches so
proxies do not drop the connection.  No third-party packages: the whole
stack is ``http.server`` + ``json`` + the :mod:`repro.serve.view`
aggregator.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple
from urllib.parse import parse_qs, urlparse

from .view import RunView

__all__ = ["MonitorServer", "DashboardHandler", "make_server", "serve_in_background"]


class MonitorServer(ThreadingHTTPServer):
    """Threading HTTP server carrying the shared :class:`RunView`.

    ``daemon_threads`` keeps open SSE connections from blocking process
    exit; :meth:`shutdown` additionally signals long-lived event streams
    so their generator loops end promptly.
    """

    daemon_threads = True

    def __init__(self, address: Tuple[str, int], view: RunView,
                 keepalive_every: float = 15.0) -> None:
        """Bind *address* and serve *view*; *keepalive_every* sets the
        idle interval between SSE comment keepalives on ``/events``."""
        super().__init__(address, DashboardHandler)
        self.view = view
        self.stop_event = threading.Event()
        self.keepalive_every = float(keepalive_every)

    def shutdown(self) -> None:
        """Stop serving and unblock any in-flight ``/events`` streams."""
        self.stop_event.set()
        super().shutdown()


class DashboardHandler(BaseHTTPRequestHandler):
    """Routes dashboard and API requests against ``server.view``."""

    server: MonitorServer  # narrowed for attribute access below
    protocol_version = "HTTP/1.1"

    def log_message(self, fmt, *args):  # noqa: D102 - stdlib signature
        """Silence per-request logging (the dashboard polls every 2 s)."""

    def do_GET(self) -> None:
        """Dispatch by path; unknown paths get 404 JSON."""
        parsed = urlparse(self.path)
        route = parsed.path.rstrip("/") or "/"
        view = self.server.view
        if route == "/":
            self._send(200, PAGE_HTML.encode("utf-8"),
                       "text/html; charset=utf-8")
        elif route == "/api/runs":
            view.refresh()
            self._send_json(view.runs())
        elif route == "/api/jobs":
            view.refresh()
            self._send_json({"jobs": view.jobs()})
        elif route == "/api/metrics":
            self._send_json(view.metrics())
        elif route == "/api/history":
            self._send_json(view.history())
        elif route == "/events":
            replay = "replay" in parse_qs(parsed.query)
            self._stream_events(replay)
        else:
            self._send_json({"error": f"unknown path {route!r}"}, status=404)

    # ------------------------------------------------------------------

    def _send(self, status: int, body: bytes, ctype: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", ctype)
        self.send_header("Content-Length", str(len(body)))
        self.send_header("Cache-Control", "no-store")
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, payload: dict, status: int = 200) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self._send(status, body, "application/json")

    def _stream_events(self, replay: bool) -> None:
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-store")
        # SSE is open-ended: no Content-Length, so close delimits it.
        self.send_header("Connection", "close")
        self.end_headers()
        try:
            stream = self.server.view.tail_events(
                from_start=replay, stop=self.server.stop_event,
                keepalive_every=self.server.keepalive_every,
            )
            for kind, text in stream:
                if kind == "event":
                    self.wfile.write(f"data: {text}\n\n".encode("utf-8"))
                else:
                    self.wfile.write(b": keepalive\n\n")
                self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError, OSError):
            return  # client went away; nothing to clean up


def make_server(run_dir, host: str = "127.0.0.1", port: int = 0,
                history=None, keepalive_every: float = 15.0) -> MonitorServer:
    """Build a bound (not yet serving) :class:`MonitorServer`.

    ``port=0`` picks a free ephemeral port — read it back from
    ``server.server_address`` (the CI smoke test relies on this).
    """
    return MonitorServer((host, port), RunView(run_dir, history=history),
                         keepalive_every=keepalive_every)


def serve_in_background(run_dir, host: str = "127.0.0.1", port: int = 0,
                        history=None) -> Tuple[MonitorServer, str]:
    """Start a dashboard server on a daemon thread; return (server, url).

    Used by the experiment CLIs' ``--serve`` flag: the sweep keeps the
    foreground, the dashboard tags along and dies with the process (or
    earlier via ``server.shutdown()``).
    """
    server = make_server(run_dir, host=host, port=port, history=history)
    thread = threading.Thread(
        target=server.serve_forever, name="repro-serve", daemon=True
    )
    thread.start()
    bound_host, bound_port = server.server_address[:2]
    return server, f"http://{bound_host}:{bound_port}/"


#: The dashboard page. Inline everything (no asset pipeline): CSS
#: custom properties carry the palette in both color schemes, vanilla
#: JS polls the JSON APIs every 2 s and subscribes to ``/events``.
PAGE_HTML = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>repro.serve — live sweep</title>
<style>
.viz-root {
  color-scheme: light;
  --surface-1: #fcfcfb;
  --page: #f9f9f7;
  --text-primary: #0b0b0b;
  --text-secondary: #52514e;
  --text-muted: #898781;
  --grid: #e1e0d9;
  --border: rgba(11,11,11,0.10);
  --accent: #2a78d6;
  --ok: #0ca30c;
  --warn: #fab219;
  --crit: #d03b3b;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) .viz-root {
    color-scheme: dark;
    --surface-1: #1a1a19;
    --page: #0d0d0d;
    --text-primary: #ffffff;
    --text-secondary: #c3c2b7;
    --text-muted: #898781;
    --grid: #2c2c2a;
    --border: rgba(255,255,255,0.10);
    --accent: #3987e5;
  }
}
:root[data-theme="dark"] .viz-root {
  color-scheme: dark;
  --surface-1: #1a1a19;
  --page: #0d0d0d;
  --text-primary: #ffffff;
  --text-secondary: #c3c2b7;
  --text-muted: #898781;
  --grid: #2c2c2a;
  --border: rgba(255,255,255,0.10);
  --accent: #3987e5;
}
body.viz-root {
  margin: 0; padding: 20px; background: var(--page);
  color: var(--text-primary);
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
}
h1 { font-size: 18px; margin: 0 0 2px; font-weight: 600; }
.sub { color: var(--text-muted); font-size: 12px; margin-bottom: 16px; }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; margin-bottom: 18px; }
.tile {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 10px 16px; min-width: 108px;
}
.tile .v { font-size: 28px; font-weight: 600; }
.tile .k { font-size: 12px; color: var(--text-secondary); }
section { margin-bottom: 22px; }
h2 { font-size: 13px; font-weight: 600; color: var(--text-secondary);
     text-transform: uppercase; letter-spacing: .04em; margin: 0 0 8px; }
table {
  border-collapse: collapse; width: 100%;
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; overflow: hidden;
}
th, td { text-align: left; padding: 6px 10px; font-size: 13px;
         border-bottom: 1px solid var(--grid); }
th { color: var(--text-muted); font-weight: 500; font-size: 12px; }
tr:last-child td { border-bottom: 0; }
td.num, th.num { text-align: right; font-variant-numeric: tabular-nums; }
td.key { font-family: ui-monospace, monospace; font-size: 12px;
         color: var(--text-secondary); }
.chip { display: inline-flex; align-items: center; gap: 6px; }
.chip .dot { width: 8px; height: 8px; border-radius: 50%;
             background: var(--text-muted); }
.chip.done .dot    { background: var(--ok); }
.chip.failed .dot  { background: var(--crit); }
.chip.running .dot { background: var(--accent); }
.chip.retrying .dot{ background: var(--warn); }
.chip.failed   { color: var(--crit); font-weight: 600; }
#log {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 8px 12px; max-height: 260px;
  overflow-y: auto; font-family: ui-monospace, monospace; font-size: 12px;
  color: var(--text-secondary); white-space: pre-wrap;
}
#log .t { color: var(--text-muted); }
.empty { color: var(--text-muted); font-size: 13px; padding: 8px 2px; }
</style>
</head>
<body class="viz-root" data-palette="#2a78d6,#0ca30c,#fab219,#d03b3b">
<h1>repro.serve</h1>
<div class="sub" id="meta">connecting…</div>

<div class="tiles" id="tiles"></div>

<section id="fleetSec" hidden>
  <h2>Fleet queue</h2>
  <div class="tiles" id="fleetTiles"></div>
</section>

<section>
  <h2>Jobs</h2>
  <div id="jobs"></div>
</section>

<section>
  <h2>Per-scheme metrics</h2>
  <div id="metrics"></div>
</section>

<section id="historySec" hidden>
  <h2>Bench history</h2>
  <div id="history"></div>
</section>

<section>
  <h2>Event stream</h2>
  <div id="log"></div>
</section>

<script>
"use strict";
const $ = (id) => document.getElementById(id);
const esc = (s) => String(s).replace(/[&<>"]/g,
  (c) => ({"&":"&amp;","<":"&lt;",">":"&gt;",'"':"&quot;"}[c]));
const fmt = (v, d=2) =>
  (v === null || v === undefined) ? "–"
  : (typeof v !== "number") ? esc(v)
  : (Math.abs(v) >= 1000) ? v.toLocaleString("en-US", {maximumFractionDigits: 0})
  : v.toLocaleString("en-US", {maximumFractionDigits: d});

function tile(k, v) {
  return `<div class="tile"><div class="v">${fmt(v, 0)}</div>` +
         `<div class="k">${esc(k)}</div></div>`;
}
function chip(state) {
  const s = esc(state || "?");
  return `<span class="chip ${s}"><span class="dot"></span>${s}</span>`;
}
function table(headers, rows, numCols) {
  if (!rows.length) return '<div class="empty">nothing yet</div>';
  const th = headers.map((h, i) =>
    `<th${numCols.has(i) ? ' class="num"' : ""}>${esc(h)}</th>`).join("");
  const trs = rows.map((r) => "<tr>" + r.map((c, i) =>
    `<td class="${numCols.has(i) ? "num" : (i === 0 ? "key" : "")}">${c}</td>`
  ).join("") + "</tr>").join("");
  return `<table><thead><tr>${th}</tr></thead><tbody>${trs}</tbody></table>`;
}

async function poll() {
  try {
    const [runs, jobs, metrics] = await Promise.all([
      fetch("/api/runs").then((r) => r.json()),
      fetch("/api/jobs").then((r) => r.json()),
      fetch("/api/metrics").then((r) => r.json()),
    ]);
    $("meta").textContent =
      runs.run_dir + " — " + runs.event_count + " bus events" +
      (runs.bus_exists ? "" : " (no events.jsonl yet)");
    const c = runs.job_counts;
    $("tiles").innerHTML =
      tile("running", c.running + c.retrying) + tile("done", c.done) +
      tile("failed", c.failed) + tile("cached", c.cached) +
      tile("manifests", metrics.jobs);
    const fl = runs.fleet;
    $("fleetSec").hidden = !fl;
    if (fl) {
      const q = fl.queue || {};
      $("fleetTiles").innerHTML =
        tile("pending", q.pending) + tile("leased", q.leased) +
        tile("done", q.done) + tile("failed", q.failed) +
        tile("fresh", fl.done_fresh) + tile("store hits", fl.done_hit) +
        tile("requeued", fl.requeued) + tile("workers", fl.workers_alive);
    }
    $("jobs").innerHTML = table(
      ["key", "scheme", "seed", "state", "phase", "sim t", "ev/s", "wall s"],
      jobs.jobs.slice(0, 100).map((j) => [
        esc((j.key || "").slice(0, 12)), fmt(j.scheme), fmt(j.seed),
        chip(j.state), fmt(j.phase), fmt(j.sim_now, 1), fmt(j.rate, 0),
        fmt(j.wall_time, 2),
      ]), new Set([5, 6, 7]));
    $("metrics").innerHTML = table(
      ["scheme", "jobs", "events/s", "drop", "norm q", "util", "q delay s"],
      Object.entries(metrics.schemes).map(([name, s]) => [
        esc(name), fmt(s.jobs, 0), fmt(s.events_per_sec, 0),
        fmt(s.drop_rate, 4), fmt(s.norm_queue, 3), fmt(s.utilization, 3),
        fmt(s.queue_delay, 4),
      ]), new Set([1, 2, 3, 4, 5, 6]));
  } catch (e) {
    $("meta").textContent = "poll failed: " + e;
  }
  setTimeout(poll, 2000);
}

async function loadHistory() {
  try {
    const h = await fetch("/api/history").then((r) => r.json());
    if (!h.entries.length) return;
    $("historySec").hidden = false;
    $("history").innerHTML = table(
      ["when", "git", "engine", "benchmark", "events/s"],
      h.entries.slice(-20).reverse().flatMap((e) =>
        Object.entries(e.rates || {}).map(([bench, rate]) => [
          esc((e.date || "").slice(0, 19)), fmt(e.git_sha), fmt(e.engine),
          esc(bench), fmt(rate, 0),
        ])), new Set([4]));
  } catch (e) { /* endpoint is optional */ }
}

function logLine(text) {
  const log = $("log");
  let rec;
  try { rec = JSON.parse(text); } catch (e) { return; }
  const div = document.createElement("div");
  const when = rec.ts ? new Date(rec.ts * 1000).toTimeString().slice(0, 8) : "";
  const key = rec.key ? " " + String(rec.key).slice(0, 12) : "";
  const extra = ["phase", "scheme", "seed", "sim_now", "error"]
    .filter((f) => rec[f] !== undefined && rec[f] !== null)
    .map((f) => f + "=" + rec[f]).join(" ");
  div.innerHTML = `<span class="t">${esc(when)}</span> ${esc(rec.type)}` +
                  `${esc(key)} ${esc(extra)}`;
  log.appendChild(div);
  while (log.childNodes.length > 200) log.removeChild(log.firstChild);
  log.scrollTop = log.scrollHeight;
}

poll();
loadHistory();
new EventSource("/events?replay=1").onmessage = (ev) => logLine(ev.data);
</script>
</body>
</html>
"""
