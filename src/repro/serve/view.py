"""Run-state aggregation for the live dashboard.

:class:`RunView` merges the two on-disk sources a run directory offers
into one queryable picture:

* ``events.jsonl`` — the live bus (:mod:`repro.obs.bus`): job lifecycle,
  phases and heartbeats, appended while the sweep is still executing.
  The view tails it incrementally (byte offset, torn-tail tolerant), so
  refreshing is cheap even against a multi-megabyte bus file.
* ``*.manifest.json`` — the durable post-hoc record, rolled up with
  :func:`repro.obs.report.scheme_summary` for per-scheme metrics.

Everything is read-only: the view never writes into the run directory,
so pointing it (or the server built on it) at a live sweep cannot
perturb results.  All public accessors return JSON-clean dicts/lists —
they are served verbatim by ``python -m repro.serve``'s ``/api/*``
endpoints and reused by tests.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..obs.bus import BUS_FILENAME
from ..obs.manifest import load_manifests_with_warnings
from ..obs.report import scheme_summary

__all__ = ["RunView"]

#: job states a key can be in, in dashboard display order
JOB_STATES = ("running", "retrying", "done", "failed", "cached")


class RunView:
    """Aggregated, refreshable state of one run directory.

    Thread-safe: the HTTP server refreshes from several request threads;
    a single lock serializes event application.  Construct once per
    served directory and call :meth:`refresh` before reading.
    """

    def __init__(self, run_dir: Union[str, Path],
                 history: Optional[Union[str, Path]] = None) -> None:
        """Watch *run_dir* (a runner cache dir); *history* optionally
        points at a ``BENCH_history.jsonl`` trajectory to expose."""
        self.run_dir = Path(run_dir)
        self.bus_path = self.run_dir / BUS_FILENAME
        self.history_path = Path(history) if history else None
        self._lock = threading.Lock()
        self._offset = 0
        self._tail = b""
        self._jobs: Dict[str, dict] = {}
        self._runs: List[dict] = []
        self._event_count = 0
        self._fleet: Dict[str, object] = {
            "seen": False,  # any fleet_* event observed yet?
            "queue": None,  # latest fleet_queue depth snapshot
            "workers": {},  # worker id -> "started" | "exited"
            "sweeps": [],  # fleet_submitted receipts, submit order
            "done_fresh": 0,
            "done_hit": 0,
            "failed": 0,
            "requeued": 0,
        }

    # ------------------------------------------------------------------
    # bus tailing

    def refresh(self) -> int:
        """Apply bus events appended since the last call; return how many."""
        with self._lock:
            return self._refresh_locked()

    def _refresh_locked(self) -> int:
        try:
            with open(self.bus_path, "rb") as fh:
                fh.seek(self._offset)
                chunk = fh.read()
        except OSError:
            return 0
        if not chunk:
            return 0
        self._offset += len(chunk)
        data = self._tail + chunk
        lines = data.split(b"\n")
        self._tail = lines.pop()  # b"" when data ended in a newline
        applied = 0
        for line in lines:
            if not line.strip():
                continue
            try:
                ev = json.loads(line)
            except ValueError:
                continue
            if isinstance(ev, dict) and ev.get("type"):
                self._apply(ev)
                applied += 1
        return applied

    def _apply(self, ev: dict) -> None:
        self._event_count += 1
        etype = ev.get("type")
        if etype == "run_started":
            self._runs.append({
                "started_ts": ev.get("ts"),
                "finished_ts": None,
                "total": ev.get("total"),
                "stats": None,
            })
            return
        if etype == "run_finished":
            for run in reversed(self._runs):
                if run["finished_ts"] is None:
                    run["finished_ts"] = ev.get("ts")
                    run["stats"] = ev.get("stats")
                    break
            return
        if etype.startswith("fleet_"):
            self._apply_fleet(etype, ev)
            return
        key = ev.get("key")
        if key is None:
            return
        job = self._jobs.setdefault(str(key), {"key": str(key), "state": None})
        if etype == "job_started":
            job.update(
                state="running",
                kind=ev.get("kind"),
                scheme=ev.get("scheme"),
                seed=ev.get("seed"),
                attempt=ev.get("attempt"),
                started_ts=ev.get("ts"),
            )
        elif etype == "job_finished":
            job.update(
                state="done",
                wall_time=ev.get("wall_time"),
                events=ev.get("events"),
                attempts=ev.get("attempts"),
                finished_ts=ev.get("ts"),
            )
        elif etype == "job_failed":
            job.update(
                state="failed",
                error=ev.get("error"),
                attempts=ev.get("attempts"),
                finished_ts=ev.get("ts"),
            )
        elif etype == "job_retried":
            job.update(state="retrying", attempt=ev.get("attempt"))
        elif etype == "job_cached":
            job.update(state="cached", finished_ts=ev.get("ts"))
        elif etype == "job_resumed":
            job["resumed_at"] = ev.get("resumed_at")
        elif etype == "phase_started":
            job["phase"] = ev.get("phase")
        elif etype == "phase_finished":
            if job.get("phase") == ev.get("phase"):
                job["phase"] = None
        elif etype == "heartbeat":
            prev_sched, prev_ts = job.get("sched"), job.get("beat_ts")
            job.update(
                sim_now=ev.get("sim_now"),
                events=ev.get("events"),
                sched=ev.get("sched"),
                peak_rss_kb=ev.get("peak_rss_kb"),
                beat_ts=ev.get("ts"),
            )
            # live events/s from consecutive heartbeats' sched/ts deltas
            ts, sched = ev.get("ts"), ev.get("sched")
            if (None not in (prev_sched, prev_ts, ts, sched)
                    and ts > prev_ts and sched >= prev_sched):
                job["rate"] = (sched - prev_sched) / (ts - prev_ts)

    def _apply_fleet(self, etype: str, ev: dict) -> None:
        """Fold one ``fleet_*`` bus event into the fleet rollup.

        Fleet events describe the *queue*, not individual runner jobs —
        their ``key`` fields are content-addressed store keys, so they
        are aggregated here instead of entering the per-job table (the
        per-job telemetry still arrives separately from inside each
        leased run).
        """
        fl = self._fleet
        fl["seen"] = True
        if etype == "fleet_queue":
            fl["queue"] = {
                state: ev.get(state)
                for state in ("pending", "leased", "done", "failed")
            }
        elif etype == "fleet_worker":
            fl["workers"][str(ev.get("worker"))] = ev.get("state")
        elif etype == "fleet_submitted":
            fl["sweeps"].append({
                "sweep": ev.get("sweep"),
                "jobs": ev.get("jobs"),
                "deduped": ev.get("deduped"),
                "ts": ev.get("ts"),
            })
        elif etype == "fleet_done":
            if ev.get("store") == "hit":
                fl["done_hit"] += 1
            else:
                fl["done_fresh"] += 1
        elif etype == "fleet_failed":
            fl["failed"] += 1
        elif etype == "fleet_requeued":
            fl["requeued"] += 1

    # ------------------------------------------------------------------
    # API payloads

    def fleet(self) -> Optional[dict]:
        """Fleet rollup for ``/api/runs``; ``None`` until fleet events show.

        ``queue`` is the latest ``fleet_queue`` depth snapshot,
        ``workers_alive`` counts workers that started and have not
        emitted their exit event (a SIGKILLed worker therefore stays
        "alive" here until its leases expire — exactly the ambiguity the
        queue's TTL machinery exists to resolve).
        """
        with self._lock:
            return self._fleet_locked()

    def _fleet_locked(self) -> Optional[dict]:
        fl = self._fleet
        if not fl["seen"]:
            return None
        workers = fl["workers"]
        return {
            "queue": dict(fl["queue"]) if fl["queue"] else None,
            "workers_alive": sum(1 for s in workers.values() if s == "started"),
            "workers_seen": len(workers),
            "sweeps": [dict(s) for s in fl["sweeps"]],
            "done_fresh": fl["done_fresh"],
            "done_hit": fl["done_hit"],
            "failed": fl["failed"],
            "requeued": fl["requeued"],
        }

    def runs(self) -> dict:
        """``/api/runs`` payload: run-level summary plus job-state counts."""
        with self._lock:
            counts = {state: 0 for state in JOB_STATES}
            for job in self._jobs.values():
                state = job.get("state")
                if state in counts:
                    counts[state] += 1
            return {
                "run_dir": str(self.run_dir),
                "bus_file": str(self.bus_path),
                "bus_exists": self.bus_path.exists(),
                "event_count": self._event_count,
                "runs": [dict(r) for r in self._runs],
                "job_counts": counts,
                "jobs_seen": len(self._jobs),
                "fleet": self._fleet_locked(),
            }

    def jobs(self) -> List[dict]:
        """``/api/jobs`` payload: one record per job key, newest first."""
        with self._lock:
            jobs = [dict(j) for j in self._jobs.values()]
        jobs.sort(key=lambda j: j.get("started_ts") or 0.0, reverse=True)
        return jobs

    def metrics(self) -> dict:
        """``/api/metrics`` payload: per-scheme rollup from the manifests.

        Read fresh from disk each call (manifests land as jobs finish);
        validation manifests are excluded, unreadable ones surfaced as
        warnings instead of failing the endpoint.
        """
        manifests, warnings = load_manifests_with_warnings(self.run_dir)
        manifests = [m for m in manifests if m.get("kind") != "validation"]
        return {
            "jobs": len(manifests),
            "schemes": scheme_summary(manifests),
            "warnings": warnings,
        }

    def history(self, last: int = 50) -> dict:
        """``/api/history`` payload: tail of the bench-history trajectory."""
        rows: List[dict] = []
        if self.history_path is not None:
            try:
                with open(self.history_path, "r", encoding="utf-8") as fh:
                    for line in fh:
                        line = line.strip()
                        if not line:
                            continue
                        try:
                            rec = json.loads(line)
                        except ValueError:
                            continue
                        if isinstance(rec, dict):
                            rows.append(rec)
            except OSError:
                pass
        return {
            "file": str(self.history_path) if self.history_path else None,
            "entries": rows[-last:],
        }

    # ------------------------------------------------------------------
    # SSE support

    def tail_events(self, from_start: bool = False, poll: float = 0.5,
                    stop=None, keepalive_every: float = 15.0):
        """Yield ``(kind, text)`` pairs for an SSE stream, forever.

        *kind* is ``"event"`` (text = one raw JSON line from the bus) or
        ``"keepalive"``.  Starts at end-of-file unless *from_start*;
        polls every *poll* seconds; *stop* is an optional
        ``threading.Event`` that ends the generator (tests use it — HTTP
        clients just disconnect).  A keepalive is yielded after every
        *keepalive_every* seconds without bus traffic so proxies and
        slow consumers keep idle connections open (tests shrink it to
        exercise the path without waiting 15 real seconds).
        """
        offset = 0 if from_start else self._size()
        tail = b""
        idle = 0.0
        while stop is None or not stop.is_set():
            chunk = b""
            try:
                with open(self.bus_path, "rb") as fh:
                    fh.seek(offset)
                    chunk = fh.read()
            except OSError:
                pass
            if chunk:
                offset += len(chunk)
                data = tail + chunk
                lines = data.split(b"\n")
                tail = lines.pop()
                sent = False
                for line in lines:
                    if line.strip():
                        yield "event", line.decode("utf-8", "replace")
                        sent = True
                if sent:
                    idle = 0.0
                    continue
            time.sleep(poll)
            idle += poll
            if idle >= keepalive_every:
                yield "keepalive", ""
                idle = 0.0

    def _size(self) -> int:
        try:
            return self.bus_path.stat().st_size
        except OSError:
            return 0
