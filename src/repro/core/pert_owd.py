"""One-way-delay PERT (paper Section 7, "Impact of Reverse Traffic").

PERT's RTT-based signal sums forward and reverse queuing delay, so
congestion on the *reverse* path (which delays ACKs, not data) can
trigger early responses.  The paper notes that if responding to reverse
congestion is unacceptable, "PERT can be used with one-way delays to
achieve similar benefits", citing the OWD-measurement techniques of
TCP-LP and Sync-TCP.

This variant feeds the smoothed-signal machinery with the *forward
one-way delay* echoed by the receiver in each ACK, making the early
response blind to reverse-path congestion while keeping every other
part of PERT (gentle-RED curve, 35 % decrease, once-per-RTT limit)
unchanged.
"""

from __future__ import annotations

from typing import Optional

from ..sim.packet import Packet
from .pert import PertSender

__all__ = ["PertOwdSender"]


class PertOwdSender(PertSender):
    """PERT variant whose congestion signal is the forward one-way delay."""

    def on_ack(self, pkt: Packet, rtt_sample: Optional[float]) -> None:
        owd = getattr(pkt, "owd_echo", -1.0)
        if owd is None or owd <= 0:
            return
        # Reuse the parent's per-ACK logic with the OWD as the signal.
        super().on_ack(pkt, rtt_sample=owd)
