"""PERT/PI: emulating a PI-controller AQM at the end host (Section 6).

Identical to :class:`~repro.core.pert.PertSender` except that the
response *probability* comes from a discretised PI controller over the
smoothed queuing-delay signal (eq. 19 of the paper) instead of the
gentle-RED curve.  The controller state advances on every ACK, i.e. the
sampling interval is the inter-ACK time, mirroring the paper's analysis
(δ ≈ N/C).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..sim.packet import Packet
from ..tcp.base import TcpSender
from .config import PertPiConfig
from .response import PiResponse
from .srtt import EwmaRtt

__all__ = ["PertPiSender"]


class PertPiSender(TcpSender):
    """PERT sender whose response probability is a PI controller output."""

    def __init__(self, *args, config: Optional[PertPiConfig] = None, **kwargs):
        kwargs.setdefault("ecn", False)
        super().__init__(*args, **kwargs)
        self.config = config or PertPiConfig()
        self.config.validate()
        self.controller = PiResponse(
            k=self.config.k,
            m=self.config.m,
            target_delay=self.config.target_delay,
            delta=self.config.delta,
        )
        self.signal = EwmaRtt(weight=self.config.srtt_weight)
        self._last_early_response = -1e9
        self.early_responses = 0
        self.signal_trace: List[Tuple[float, float, float]] = []
        self.record_signal = False

    @property
    def queuing_delay_estimate(self) -> float:
        return self.signal.queuing_delay

    def on_ack(self, pkt: Packet, rtt_sample: Optional[float]) -> None:
        if rtt_sample is None:
            return
        self.signal.update(rtt_sample)
        prob = self.controller.update(self.signal.queuing_delay)
        if self.record_signal:
            self.signal_trace.append((self.sim.now, self.signal.value, prob))
        if prob <= 0.0 or self.in_recovery:
            return
        srtt = self.signal.value if self.signal.value is not None else self.rto
        spacing = self.config.min_response_interval_rtts * srtt
        if self.sim.now - self._last_early_response < spacing:
            return
        if self.rng.random() < prob:
            self._early_response()

    def _early_response(self) -> None:
        self._last_early_response = self.sim.now
        self.early_responses += 1
        factor = 1.0 - self.config.early_decrease
        self.cwnd = max(2.0, self.cwnd * factor)
        self.ssthresh = max(2.0, self.cwnd)
        if self.obs is not None:
            self.obs.sender_event(self, "early_response", self.sim.now)
