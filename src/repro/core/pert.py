"""PERT: Probabilistic Early Response TCP (the paper's contribution).

PERT is a SACK TCP sender with one addition: on every incoming ACK it

1. updates the ``srtt_0.99`` smoothed-RTT signal,
2. converts it to a queuing-delay estimate (srtt minus the minimum
   observed RTT, the propagation-delay proxy),
3. maps the estimate through the gentle-RED probability curve, and
4. with that probability — and at most once per RTT — multiplicatively
   reduces the congestion window by 35 % (``cwnd *= 0.65``), emulating
   what an ECN mark from a RED router would have caused.

Packet losses are handled exactly as in SACK TCP (fast retransmit /
recovery), so PERT degrades gracefully when prediction fails.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..sim.packet import Packet
from ..tcp.base import TcpSender
from .config import PertConfig
from .response import GentleRedCurve, RedCurve
from .srtt import EwmaRtt

__all__ = ["PertSender"]


class PertSender(TcpSender):
    """PERT sender emulating gentle-RED/ECN at the end host.

    Parameters beyond :class:`~repro.tcp.base.TcpSender`'s are supplied
    via a :class:`~repro.core.config.PertConfig`.
    """

    def __init__(self, *args, config: Optional[PertConfig] = None, **kwargs):
        kwargs.setdefault("ecn", False)  # PERT needs no router support
        super().__init__(*args, **kwargs)
        self.config = config or PertConfig()
        self.config.validate()
        curve_cls = GentleRedCurve if self.config.gentle else RedCurve
        self.curve = curve_cls(
            t_min=self.config.t_min,
            t_max=self.config.t_max,
            p_max=self.config.p_max,
        )
        self.signal = EwmaRtt(weight=self.config.srtt_weight)
        self._last_early_response = -1e9
        self._interval_scale = 1.0  # Section 7: escalating response spacing
        self.early_responses = 0
        #: optional trace of (time, srtt, probability) for analysis
        self.signal_trace: List[Tuple[float, float, float]] = []
        self.record_signal = False

    # ------------------------------------------------------------------
    @property
    def queuing_delay_estimate(self) -> float:
        """Current smoothed queuing-delay estimate (srtt − min RTT)."""
        return self.signal.queuing_delay

    def response_probability(self) -> float:
        """Early-response probability for the current signal value."""
        return self.curve.probability(self.signal.queuing_delay)

    # ------------------------------------------------------------------
    def on_ack(self, pkt: Packet, rtt_sample: Optional[float]) -> None:
        if rtt_sample is None:
            return
        self.signal.update(rtt_sample)
        prob = self.response_probability()
        if self.record_signal:
            self.signal_trace.append((self.sim.now, self.signal.value, prob))
        if prob <= 0.0:
            # No congestion: the escalation resets, and the optional
            # aggressive-increase compensation may add extra growth.
            self._interval_scale = 1.0
            if self.config.aggressive_increase > 0 and not self.in_recovery:
                if self.cwnd >= self.ssthresh:
                    self.cwnd = min(
                        self.cwnd
                        + self.config.aggressive_increase / self.cwnd,
                        self.max_cwnd,
                    )
            return
        if self.in_recovery:
            # Loss recovery already reduced the window; early response on
            # top of it would double-penalise the flow.
            return
        srtt = self.signal.value if self.signal.value is not None else self.rto
        spacing = (self.config.min_response_interval_rtts * srtt
                   * self._interval_scale)
        if self.sim.now - self._last_early_response < spacing:
            return
        threshold = self.config.deterministic_threshold
        if threshold is not None and prob >= threshold:
            self._early_response()
        elif self.rng.random() < prob:
            self._early_response()

    def _early_response(self) -> None:
        """Multiplicative early decrease (paper: 35 %), no retransmission."""
        self._last_early_response = self.sim.now
        self.early_responses += 1
        if self.config.escalating_interval:
            self._interval_scale = min(self._interval_scale * 2.0, 16.0)
        factor = 1.0 - self.config.early_decrease
        self.cwnd = max(2.0, self.cwnd * factor)
        self.ssthresh = max(2.0, self.cwnd)
        if self.obs is not None:
            self.obs.sender_event(self, "early_response", self.sim.now)
