"""PERT — Probabilistic Early Response TCP (the paper's contribution).

Public API: the PERT senders (:class:`PertSender`, :class:`PertPiSender`),
their configuration dataclasses, the smoothed-RTT congestion signals and
the pluggable response curves.
"""

from .config import PertConfig, PertPiConfig
from .pert import PertSender
from .pert_owd import PertOwdSender
from .pert_pi import PertPiSender
from .pert_rem import PertRemConfig, PertRemSender
from .response import GentleRedCurve, PiResponse, RedCurve, RemResponse
from .srtt import SRTT_WEIGHT_PERT, SRTT_WEIGHT_TCP, EwmaRtt, MovingAverageRtt

__all__ = [
    "PertConfig",
    "PertPiConfig",
    "PertSender",
    "PertOwdSender",
    "PertPiSender",
    "PertRemSender",
    "PertRemConfig",
    "GentleRedCurve",
    "RedCurve",
    "PiResponse",
    "RemResponse",
    "EwmaRtt",
    "MovingAverageRtt",
    "SRTT_WEIGHT_PERT",
    "SRTT_WEIGHT_TCP",
]
