"""Smoothed-RTT congestion signals (the paper's ``srtt_0.99``).

Section 2.4 of the paper evaluates a family of smoothers over the per-ACK
instantaneous RTT and settles on an exponentially weighted moving average
with history weight 0.99:

    srtt <- 0.99 * srtt + 0.01 * rtt_sample

This module provides that estimator plus the alternatives studied in
Figure 3 (instantaneous, EWMA with weight 7/8, and a buffer-sized moving
average), so both PERT itself and the predictor-comparison experiments
share one implementation.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

__all__ = ["EwmaRtt", "MovingAverageRtt", "SRTT_WEIGHT_PERT", "SRTT_WEIGHT_TCP"]

SRTT_WEIGHT_PERT = 0.99  #: history weight used by PERT (srtt_0.99)
SRTT_WEIGHT_TCP = 7.0 / 8.0  #: classic TCP RTO smoothing weight


class EwmaRtt:
    """Exponentially weighted moving average of per-ACK RTT samples.

    Parameters
    ----------
    weight:
        Weight on the *history* term (the paper's α); the new sample gets
        ``1 - weight``.
    """

    def __init__(self, weight: float = SRTT_WEIGHT_PERT):
        if not 0.0 <= weight < 1.0:
            raise ValueError("weight must be in [0, 1)")
        self.weight = weight
        # hoisted out of update(): the per-ACK path must not recompute it
        self._gain = 1.0 - weight
        self.value: Optional[float] = None
        self.min_rtt = float("inf")
        self.samples = 0

    def update(self, sample: float) -> float:
        """Fold in one RTT sample; returns the new smoothed value."""
        if sample <= 0:
            raise ValueError("RTT samples must be positive")
        self.samples += 1
        if sample < self.min_rtt:
            self.min_rtt = sample
        value = self.value
        if value is None:
            self.value = sample
            return sample
        value = self.weight * value + self._gain * sample
        self.value = value
        return value

    @property
    def queuing_delay(self) -> float:
        """Current smoothed queuing-delay estimate: srtt − min RTT."""
        if self.value is None:
            return 0.0
        return max(0.0, self.value - self.min_rtt)

    def reset(self) -> None:
        self.value = None
        self.min_rtt = float("inf")
        self.samples = 0


class MovingAverageRtt:
    """Sliding-window mean of the last *window* RTT samples.

    Section 2.4 shows a 750-sample (buffer-sized) moving average is the
    best predictor but requires knowing the bottleneck buffer size, which
    motivates the EWMA replacement.
    """

    def __init__(self, window: int = 750):
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self._buf: Deque[float] = deque(maxlen=window)
        self._sum = 0.0
        self.min_rtt = float("inf")

    def update(self, sample: float) -> float:
        if sample <= 0:
            raise ValueError("RTT samples must be positive")
        self.min_rtt = min(self.min_rtt, sample)
        if len(self._buf) == self.window:
            self._sum -= self._buf[0]
        self._buf.append(sample)
        self._sum += sample
        return self.value

    @property
    def value(self) -> Optional[float]:
        if not self._buf:
            return None
        return self._sum / len(self._buf)

    @property
    def queuing_delay(self) -> float:
        v = self.value
        if v is None:
            return 0.0
        return max(0.0, v - self.min_rtt)
