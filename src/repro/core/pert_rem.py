"""PERT emulating REM at the end host.

A third instantiation of the paper's pluggable-response design (its
conclusion: "other AQM schemes can be potentially emulated at the
end-host"): identical sender machinery to PERT/RED and PERT/PI, with the
response probability produced by :class:`~repro.core.response.RemResponse`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..sim.packet import Packet
from ..tcp.base import TcpSender
from .response import RemResponse
from .srtt import EwmaRtt

__all__ = ["PertRemConfig", "PertRemSender"]


@dataclass
class PertRemConfig:
    """Parameters of PERT emulating REM."""

    gamma: float = 0.5
    alpha: float = 0.2
    phi: float = 1.1
    target_delay: float = 0.012
    srtt_weight: float = 0.99
    early_decrease: float = 0.35
    min_response_interval_rtts: float = 1.0

    def validate(self) -> None:
        if self.phi <= 1.0:
            raise ValueError("phi must be > 1")
        if not 0 < self.early_decrease < 1:
            raise ValueError("early_decrease must be in (0, 1)")
        if not 0 <= self.srtt_weight < 1:
            raise ValueError("srtt_weight must be in [0, 1)")


class PertRemSender(TcpSender):
    """PERT sender whose response probability follows REM's price law."""

    def __init__(self, *args, config: Optional[PertRemConfig] = None, **kwargs):
        kwargs.setdefault("ecn", False)
        super().__init__(*args, **kwargs)
        self.config = config or PertRemConfig()
        self.config.validate()
        self.controller = RemResponse(
            gamma=self.config.gamma,
            alpha=self.config.alpha,
            phi=self.config.phi,
            target_delay=self.config.target_delay,
        )
        self.signal = EwmaRtt(weight=self.config.srtt_weight)
        self._last_early_response = -1e9
        self.early_responses = 0
        self.signal_trace: List[Tuple[float, float, float]] = []
        self.record_signal = False

    @property
    def queuing_delay_estimate(self) -> float:
        return self.signal.queuing_delay

    def on_ack(self, pkt: Packet, rtt_sample: Optional[float]) -> None:
        if rtt_sample is None:
            return
        self.signal.update(rtt_sample)
        prob = self.controller.update(self.signal.queuing_delay)
        if self.record_signal:
            self.signal_trace.append((self.sim.now, self.signal.value, prob))
        if prob <= 0.0 or self.in_recovery:
            return
        srtt = self.signal.value if self.signal.value is not None else self.rto
        spacing = self.config.min_response_interval_rtts * srtt
        if self.sim.now - self._last_early_response < spacing:
            return
        if self.rng.random() < prob:
            self._early_response()

    def _early_response(self) -> None:
        self._last_early_response = self.sim.now
        self.early_responses += 1
        factor = 1.0 - self.config.early_decrease
        self.cwnd = max(2.0, self.cwnd * factor)
        self.ssthresh = max(2.0, self.cwnd)
        if self.obs is not None:
            self.obs.sender_event(self, "early_response", self.sim.now)
