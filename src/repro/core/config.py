"""Configuration objects for PERT agents."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["PertConfig", "PertPiConfig"]


@dataclass
class PertConfig:
    """Parameters of PERT emulating gentle RED (paper Section 3).

    Attributes
    ----------
    t_min, t_max:
        Queuing-delay thresholds in seconds.  The paper uses
        ``T_min = P + 5 ms`` and ``T_max = P + 10 ms``; expressed on the
        queuing-delay axis these are 5 ms and 10 ms.
    p_max:
        Response probability at ``t_max`` (paper: 0.05).
    srtt_weight:
        History weight of the smoothed-RTT signal (paper: 0.99).
    early_decrease:
        Multiplicative early-response decrease (paper: 35 %, i.e. the
        window becomes 0.65x), derived from the buffer-sizing rule
        B > f/(1-f) * BDP of eq. (1).
    min_response_interval_rtts:
        Early responses are spaced at least this many (smoothed) RTTs
        apart (paper: once per RTT).
    gentle:
        Use the gentle-RED ramp to 1 at ``2*t_max`` (paper's choice).

    The remaining knobs implement the *adaptive pro-activeness* ideas the
    paper sketches in Section 7 (all off by default, matching the paper's
    evaluated configuration):

    escalating_interval:
        Progressively double the minimum response spacing while the
        signal stays congested ("increasing the time for next response
        progressively if queue lengths persist"); resets once the signal
        drops below ``t_min``.
    deterministic_threshold:
        If set, respond deterministically (no coin flip) once the curve
        probability exceeds this value ("limiting the probabilistic
        early response to once when the probability exceeds some
        threshold, say 0.75").
    aggressive_increase:
        Extra congestion-avoidance growth factor applied while the
        signal shows no congestion, compensating for early-response
        throughput loss ("the increase function can be made more
        aggressive than that in TCP in the absence of congestion").
        0 disables; 1.0 doubles the growth rate.
    """

    t_min: float = 0.005
    t_max: float = 0.010
    p_max: float = 0.05
    srtt_weight: float = 0.99
    early_decrease: float = 0.35
    min_response_interval_rtts: float = 1.0
    gentle: bool = True
    escalating_interval: bool = False
    deterministic_threshold: Optional[float] = None
    aggressive_increase: float = 0.0

    def validate(self) -> None:
        if not 0 <= self.t_min < self.t_max:
            raise ValueError("need 0 <= t_min < t_max")
        if not 0 < self.p_max <= 1:
            raise ValueError("p_max must be in (0, 1]")
        if not 0 <= self.srtt_weight < 1:
            raise ValueError("srtt_weight must be in [0, 1)")
        if not 0 < self.early_decrease < 1:
            raise ValueError("early_decrease must be in (0, 1)")
        if self.min_response_interval_rtts < 0:
            raise ValueError("min_response_interval_rtts must be >= 0")
        if self.deterministic_threshold is not None and not (
            0 < self.deterministic_threshold <= 1
        ):
            raise ValueError("deterministic_threshold must be in (0, 1]")
        if self.aggressive_increase < 0:
            raise ValueError("aggressive_increase must be >= 0")


@dataclass
class PertPiConfig:
    """Parameters of PERT emulating a PI controller (paper Section 6).

    ``k`` and ``m`` are the PI gains of eq. (16)/(21); ``target_delay``
    is the queuing-delay set point (paper: 3 ms).
    """

    k: float = 0.1
    m: float = 1.0
    target_delay: float = 0.003
    delta: float = 0.001
    srtt_weight: float = 0.99
    early_decrease: float = 0.35
    min_response_interval_rtts: float = 1.0

    def validate(self) -> None:
        if self.k <= 0 or self.m <= 0:
            raise ValueError("PI gains must be positive")
        if self.target_delay < 0:
            raise ValueError("target_delay must be >= 0")
        if not 0 < self.early_decrease < 1:
            raise ValueError("early_decrease must be in (0, 1)")
