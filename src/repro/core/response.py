"""Probabilistic early-response curves (paper Section 3, Figure 5).

PERT maps its congestion signal — the smoothed queuing-delay estimate —
through the *gentle RED* probability curve:

* below ``t_min``: probability 0,
* ``t_min``..``t_max``: linear ramp from 0 to ``p_max``,
* ``t_max``..``2*t_max``: linear ramp from ``p_max`` to 1,
* beyond ``2*t_max``: probability 1.

The paper fixes ``(T_min, T_max, p_max) = (P + 5 ms, P + 10 ms, 0.05)``
where P is the propagation-delay estimate; expressed on queuing delay
that is ``(5 ms, 10 ms, 0.05)``, which is this module's default.

A non-gentle variant (probability jumps to 1 at ``t_max``, as in original
RED) and the PI-controller response (Section 6) are provided so the
response function is pluggable, as the paper advertises.
"""

from __future__ import annotations

__all__ = ["GentleRedCurve", "RedCurve", "PiResponse", "RemResponse"]


class GentleRedCurve:
    """Gentle-RED response probability over the queuing-delay signal.

    Parameters are in seconds of queuing delay.
    """

    def __init__(self, t_min: float = 0.005, t_max: float = 0.010, p_max: float = 0.05):
        if not 0 <= t_min < t_max:
            raise ValueError("need 0 <= t_min < t_max")
        if not 0 < p_max <= 1:
            raise ValueError("p_max must be in (0, 1]")
        self.t_min = t_min
        self.t_max = t_max
        self.p_max = p_max

    def probability(self, queuing_delay: float) -> float:
        """Early-response probability for the given queuing delay."""
        q = queuing_delay
        if q <= self.t_min:
            return 0.0
        if q < self.t_max:
            return self.p_max * (q - self.t_min) / (self.t_max - self.t_min)
        if q < 2.0 * self.t_max:
            return self.p_max + (1.0 - self.p_max) * (q - self.t_max) / self.t_max
        return 1.0

    __call__ = probability

    @property
    def slope(self) -> float:
        """L_PERT of the stability analysis: p_max / (T_max − T_min)."""
        return self.p_max / (self.t_max - self.t_min)


class RedCurve(GentleRedCurve):
    """Non-gentle RED response: probability jumps to 1 above ``t_max``."""

    def probability(self, queuing_delay: float) -> float:
        q = queuing_delay
        if q <= self.t_min:
            return 0.0
        if q < self.t_max:
            return self.p_max * (q - self.t_min) / (self.t_max - self.t_min)
        return 1.0

    __call__ = probability


class PiResponse:
    """Discretised PI controller over the queuing-delay signal (eq. 19).

    The continuous controller ``C(s) = K (1 + s/m) / s`` is discretised
    with the bilinear transform at sampling interval ``delta``, giving

        p(k) = p(k-1) + gamma * (Tq(k) - Tq*) - beta * (Tq(k-1) - Tq*)

    with ``gamma = K/m + K*delta/2`` and ``beta = K/m - K*delta/2``.
    The probability is clamped to [0, 1].

    Parameters
    ----------
    k, m:
        Controller gains (see :func:`repro.fluid.stability.pert_pi_gains`
        for the Theorem 2 schedule).
    target_delay:
        Queuing-delay set point Tq* (the paper's experiment uses 3 ms).
    delta:
        Nominal sampling interval used in the bilinear transform.
    """

    def __init__(self, k: float, m: float, target_delay: float = 0.003,
                 delta: float = 0.001):
        if m <= 0 or k <= 0:
            raise ValueError("gains k and m must be positive")
        if delta <= 0:
            raise ValueError("delta must be positive")
        self.k = k
        self.m = m
        self.target_delay = target_delay
        self.delta = delta
        self.gamma = k / m + k * delta / 2.0
        self.beta = k / m - k * delta / 2.0
        self.p = 0.0
        self._prev_err = 0.0

    def update(self, queuing_delay: float) -> float:
        """One controller step; returns the new response probability."""
        err = queuing_delay - self.target_delay
        p = self.p + self.gamma * err - self.beta * self._prev_err
        self.p = min(1.0, max(0.0, p))
        self._prev_err = err
        return self.p

    def reset(self) -> None:
        self.p = 0.0
        self._prev_err = 0.0


class RemResponse:
    """REM (Random Exponential Marking) over the queuing-delay signal.

    Demonstrates the paper's generality claim with a third emulated AQM
    (its reference [2]): a *price* integrates the queuing-delay mismatch
    and the response probability follows REM's exponential law

        price <- max(0, price + gamma * (alpha*(Tq - Tq*) + (Tq - Tq_prev)))
        p      = 1 - phi^(-price)

    Because end-to-end delay already sums per-hop delays, a single
    end-host price plays the role of REM's per-link price sum.

    Parameters
    ----------
    gamma, alpha, phi:
        REM constants (phi > 1); defaults scaled for a delay-valued
        (seconds) signal rather than REM's packet-valued queue.
    target_delay:
        Queuing-delay set point Tq*.
    """

    def __init__(self, gamma: float = 0.5, alpha: float = 0.2,
                 phi: float = 1.1, target_delay: float = 0.012):
        if phi <= 1.0:
            raise ValueError("phi must be > 1")
        if gamma <= 0 or alpha < 0:
            raise ValueError("gamma must be > 0 and alpha >= 0")
        if target_delay < 0:
            raise ValueError("target_delay must be >= 0")
        self.gamma = gamma
        self.alpha = alpha
        self.phi = phi
        self.target_delay = target_delay
        self.price = 0.0
        self._prev = 0.0

    def update(self, queuing_delay: float) -> float:
        """One price step; returns the response probability."""
        mismatch = (self.alpha * (queuing_delay - self.target_delay)
                    + (queuing_delay - self._prev))
        self.price = max(0.0, self.price + self.gamma * mismatch)
        self._prev = queuing_delay
        return self.probability()

    def probability(self) -> float:
        return 1.0 - self.phi ** (-self.price)

    def reset(self) -> None:
        self.price = 0.0
        self._prev = 0.0
