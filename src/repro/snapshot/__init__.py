"""repro.snapshot — deterministic checkpoint / restore / fork.

The subsystem that turns long-horizon simulation into resumable,
fork-able work:

* :func:`save` / :func:`load` — checkpoint a live simulator (plus the
  experiment harness's state object) to a versioned, checksummed file;
  a restored run continues bit-identically to an uninterrupted one.
* :func:`fork` / :func:`fork_bytes` — N divergent continuations of one
  warm checkpoint, with deterministic per-fork RNG reseeding.
* :mod:`repro.snapshot.runtime` — the checkpoint slot the runner's
  executor installs around each job attempt (periodic checkpoint,
  resume after crash/timeout).
* ``python -m repro.snapshot inspect|verify|diff`` — checkpoint tooling.

See ``docs/ARCHITECTURE.md`` (Snapshot subsystem) for format details,
what is and is not captured, and fork semantics.
"""

from .core import (
    Restored,
    SnapshotInfo,
    capture_bytes,
    inspect,
    load,
    restore_bytes,
    save,
    sim_summary,
    verify,
)
from .errors import SnapshotError
from .fork import fork, fork_bytes, reseed_streams
from .format import FORMAT_VERSION
from .runtime import (
    CheckpointSlot,
    active_checkpoint,
    checkpoint_scope,
    resolve_checkpoint_interval,
)

__all__ = [
    "FORMAT_VERSION",
    "SnapshotError",
    "SnapshotInfo",
    "Restored",
    "capture_bytes",
    "restore_bytes",
    "save",
    "load",
    "inspect",
    "verify",
    "sim_summary",
    "fork",
    "fork_bytes",
    "reseed_streams",
    "CheckpointSlot",
    "checkpoint_scope",
    "active_checkpoint",
    "resolve_checkpoint_interval",
]
