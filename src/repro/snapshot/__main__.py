"""Checkpoint tooling CLI.

    PYTHONPATH=src python -m repro.snapshot inspect  FILE [--json]
    PYTHONPATH=src python -m repro.snapshot verify   FILE [--json]
    PYTHONPATH=src python -m repro.snapshot diff     FILE_A FILE_B

``inspect`` reads only the plain-text header (works even when the body
no longer unpickles); ``verify`` additionally checksums and restores the
body and checks engine invariants; ``diff`` compares two checkpoints'
headers and restored simulator summaries (exit code 1 when they differ,
like ``diff(1)``).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict

from . import core
from .errors import SnapshotError

_SUMMARY_FIELDS = ("now", "events_processed", "pending", "heap_len", "seq", "seed")


def _print_header(header: Dict[str, Any]) -> None:
    sim = header.get("sim") or {}
    print(f"id:             {header.get('id')}")
    print(f"parent:         {header.get('parent')}")
    if "fork_salt" in header:
        print(f"fork salt:      {header['fork_salt']}")
    if "label" in header:
        print(f"label:          {header['label']}")
    print(f"format:         {header.get('format')}")
    print(f"repro version:  {header.get('repro_version')} "
          f"(python {header.get('python')})")
    print(f"body:           {header.get('body_bytes'):,} bytes  "
          f"sha256 {str(header.get('body_sha256'))[:16]}…")
    if sim:
        print(f"sim time:       {sim.get('now')}")
        print(f"events:         {sim.get('events_processed'):,} processed, "
              f"{sim.get('pending'):,} pending "
              f"({sim.get('heap_len'):,} heap entries)")
        print(f"seed:           {sim.get('seed')}")
        streams = sim.get("streams") or []
        shown = ", ".join(streams[:8]) + (" …" if len(streams) > 8 else "")
        print(f"rng streams:    {len(streams)} ({shown})")
    if header.get("meta"):
        print(f"meta:           {json.dumps(header['meta'], sort_keys=True)}")


def cmd_inspect(args) -> int:
    """``inspect``: print the header without unpickling the body."""
    header = core.inspect(args.file)
    if args.json:
        print(json.dumps(header, indent=2, sort_keys=True))
    else:
        _print_header(header)
    return 0


def cmd_verify(args) -> int:
    """``verify``: checksum, restore the body, and check invariants."""
    header = core.verify(args.file)
    if args.json:
        print(json.dumps(header, indent=2, sort_keys=True))
    else:
        _print_header(header)
        print(f"verified:       ok (body restored, invariants hold)")
    return 0


def cmd_diff(args) -> int:
    """``diff``: compare two checkpoints' summaries; exit 1 on mismatch."""
    def facts(path: str) -> Dict[str, Any]:
        header = core.inspect(path)
        sim = dict(header.get("sim") or {})
        out = {f: sim.get(f) for f in _SUMMARY_FIELDS}
        out["id"] = header.get("id")
        out["parent"] = header.get("parent")
        out["repro_version"] = header.get("repro_version")
        out["body_bytes"] = header.get("body_bytes")
        out["streams"] = sim.get("streams") or []
        return out

    a, b = facts(args.file_a), facts(args.file_b)
    differ = False
    for key in sorted(set(a) | set(b)):
        va, vb = a.get(key), b.get(key)
        if key == "streams":
            only_a = sorted(set(va) - set(vb))
            only_b = sorted(set(vb) - set(va))
            if only_a or only_b:
                differ = True
                if only_a:
                    print(f"streams only in {args.file_a}: {', '.join(only_a)}")
                if only_b:
                    print(f"streams only in {args.file_b}: {', '.join(only_b)}")
            continue
        if va != vb:
            differ = True
            print(f"{key}: {va} != {vb}")
    if not differ:
        print("snapshots match (header summaries are identical)")
    return 1 if differ else 0


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    ap = argparse.ArgumentParser(
        prog="repro.snapshot",
        description="Inspect, verify and diff simulation checkpoints",
    )
    sub = ap.add_subparsers(dest="command", required=True)

    p = sub.add_parser("inspect", help="print a checkpoint's header")
    p.add_argument("file")
    p.add_argument("--json", action="store_true", help="raw JSON header")
    p.set_defaults(fn=cmd_inspect)

    p = sub.add_parser(
        "verify", help="checksum + restore + engine-invariant check"
    )
    p.add_argument("file")
    p.add_argument("--json", action="store_true", help="raw JSON output")
    p.set_defaults(fn=cmd_verify)

    p = sub.add_parser("diff", help="compare two checkpoints' summaries")
    p.add_argument("file_a")
    p.add_argument("file_b")
    p.set_defaults(fn=cmd_diff)

    args = ap.parse_args(argv)
    try:
        return args.fn(args)
    except SnapshotError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
