"""Forking: one warm checkpoint, N divergent continuations.

The expensive part of every long-horizon experiment is the warm-up
transient; a fork re-uses it.  Restoring the same snapshot body twice
yields two *independent* object graphs in identical states — continuing
either is bit-identical to continuing the original run.  Divergence is
then injected deliberately:

* ``salt=None`` — a pure clone.  Used by warm-started sweeps, where each
  grid point must reproduce its cold-run result exactly.
* ``salt="a"`` / ``salt=3`` — every derived RNG stream is deterministically
  reseeded as a function of (master seed, stream label, salt), and the
  master seed is salted so streams derived *after* the fork diverge too.
  Same salt ⇒ same continuation, different salts ⇒ independent ones —
  the Fig. 12-style perturbation shape (N futures of one warmed system).

Reseeding is in-place: components hold references to the same
:class:`random.Random` objects the simulator handed out, so reseeding
the registered stream objects re-randomizes every holder at once.
Fully deterministic senders (e.g. plain SACK over DropTail) draw no
randomness after warm-up; forks of such a system only diverge if the
caller also perturbs it through ``mutate`` (add flows, change a queue
parameter, ...), which runs after reseeding.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Callable, Iterable, List, Optional, Tuple, Union

from ..sim.engine import Simulator
from .core import Restored, read_snapshot, restore_bytes
from .errors import SnapshotError

__all__ = ["reseed_streams", "fork_bytes", "fork"]


def reseed_streams(sim: Simulator, salt: Union[str, int]) -> List[str]:
    """Deterministically reseed every derived RNG stream of *sim*.

    Each registered stream ``label`` is reseeded with
    ``"{seed}/{label}@fork/{salt}"`` — a pure function of the master
    seed, the label, and the salt, so forks are themselves reproducible.
    The master seed is then salted the same way, making streams derived
    after the fork (late-starting flows, new queues) diverge as well.
    Returns the labels reseeded, in sorted order.
    """
    base = sim.seed
    labels = sorted(sim._streams)
    for label in labels:
        sim._streams[label].seed(f"{base}/{label}@fork/{salt}")
    sim.seed = f"{base}@fork/{salt}"
    return labels


def fork_bytes(
    body: bytes,
    salt: Optional[Union[str, int]] = None,
    *,
    mutate: Optional[Callable[[Simulator, Any], None]] = None,
) -> Tuple[Simulator, Any]:
    """One independent continuation of a captured snapshot body.

    ``salt=None`` returns a bit-identical clone; otherwise the clone's
    RNG streams are reseeded per :func:`reseed_streams`.  *mutate*, if
    given, runs last with ``(sim, state)`` — the hook for structural
    perturbations (start extra flows, retune a controller).
    """
    sim, state = restore_bytes(body)
    if salt is not None:
        reseed_streams(sim, salt)
    if mutate is not None:
        mutate(sim, state)
    return sim, state


def fork(
    path: Union[str, Path],
    salts: Iterable[Optional[Union[str, int]]],
    *,
    mutate: Optional[Callable[[Simulator, Any], None]] = None,
    verify_checksum: bool = True,
) -> List[Restored]:
    """Fork a snapshot file into one continuation per salt.

    The body is read (and checksummed) once; each salt gets its own
    restored object graph.  Duplicate non-``None`` salts are rejected —
    they would silently produce identical "independent" continuations.
    """
    salts = list(salts)
    real = [s for s in salts if s is not None]
    if len(set(map(str, real))) != len(real):
        raise SnapshotError(f"duplicate fork salts: {salts!r}")
    header, body = read_snapshot(path, verify=verify_checksum)
    out: List[Restored] = []
    for salt in salts:
        sim, state = fork_bytes(body, salt, mutate=mutate)
        child_header = dict(header)
        child_header["parent"] = header.get("id")
        child_header["fork_salt"] = None if salt is None else str(salt)
        out.append(Restored(sim=sim, state=state, header=child_header))
    return out
