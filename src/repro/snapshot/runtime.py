"""Job-scoped checkpoint context shared between the runner and jobs.

Mirrors :mod:`repro.obs.runtime`: the executor wraps a job attempt in
:func:`checkpoint_scope`, and checkpoint-aware job code (the dumbbell
harness) reaches the active slot through :func:`active_checkpoint`
without any plumbing through job parameters — job *specs* (and cache
keys) never mention checkpointing, because a resumed run is bit-identical
to a straight-through one and may share its cache entry.

The slot's life cycle over a crashy job::

    attempt 1:  resume() -> None, save() every interval, worker killed
    attempt 2:  resume() -> state at the last checkpoint, continues,
                finishes; executor records lineage and deletes the file

Checkpoint *interval* is simulated seconds between periodic saves; the
``REPRO_CHECKPOINT`` environment variable supplies it when the
``checkpoint=`` argument of :func:`repro.runner.run_jobs` is ``None``.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

from ..sim.engine import Simulator
from . import core
from .errors import SnapshotError

__all__ = [
    "CheckpointSlot",
    "checkpoint_scope",
    "active_checkpoint",
    "resolve_checkpoint_interval",
]

_OFF_VALUES = {"", "0", "off", "false", "no"}


def resolve_checkpoint_interval(checkpoint: Optional[float]) -> Optional[float]:
    """``None`` honours ``$REPRO_CHECKPOINT`` (simulated seconds); absent
    both, checkpointing is off.  ``0``/negative disables explicitly."""
    if checkpoint is None:
        env = os.environ.get("REPRO_CHECKPOINT", "").strip().lower()
        if env in _OFF_VALUES:
            return None
        checkpoint = float(env)
    interval = float(checkpoint)
    return interval if interval > 0 else None


class CheckpointSlot:
    """One job's checkpoint file plus resume/save bookkeeping."""

    def __init__(self, path: Union[str, Path], interval: float):
        self.path = Path(path)
        self.interval = float(interval)
        self.saves = 0
        self.resumed = False
        self.resumed_from: Optional[str] = None
        self.resumed_at: Optional[float] = None
        self.last_id: Optional[str] = None

    # -- resume --------------------------------------------------------
    def resume(self) -> Optional[Tuple[Simulator, Any]]:
        """Restore the slot's checkpoint if one exists; ``None`` otherwise.

        A checkpoint that fails verification (torn write survived the
        atomic rename somehow, version bump in between) is discarded so
        the job falls back to a fresh run — resume is an optimization,
        never a correctness requirement.
        """
        if not self.path.exists():
            return None
        try:
            restored = core.load(self.path)
        except SnapshotError:
            self.discard()
            return None
        self.resumed = True
        self.resumed_from = restored.id
        self.resumed_at = restored.sim.now
        self.last_id = restored.id
        # Lazy import: the bus is optional live telemetry, resume is not.
        from ..obs import bus as _bus

        _bus.emit("job_resumed", resumed_at=self.resumed_at)
        return restored.sim, restored.state

    # -- save ----------------------------------------------------------
    def save(self, sim: Simulator, state: Any = None) -> core.SnapshotInfo:
        """Write a periodic checkpoint, chaining lineage via ``parent``.

        The simulator's profiler (a wall-clock observer that refuses to
        pickle) is detached for the duration of the write and reattached
        after — checkpointing must compose with ``REPRO_PROFILE``.
        """
        profiler, sim.profiler = sim.profiler, None
        try:
            info = core.save(self.path, sim, state, parent=self.last_id)
        finally:
            sim.profiler = profiler
        self.saves += 1
        self.last_id = info.id
        return info

    def discard(self) -> None:
        """Delete the checkpoint file (done, or it failed verification)."""
        try:
            self.path.unlink()
        except OSError:
            pass

    def reject(self) -> None:
        """Undo a resume whose state the job refused (e.g. the restored
        run was built from different parameters).  Deletes the file and
        clears the resume bookkeeping so the attempt runs fresh."""
        self.discard()
        self.resumed = False
        self.resumed_from = None
        self.resumed_at = None
        self.last_id = None

    def summary(self) -> Optional[Dict[str, Any]]:
        """JSON-clean lineage record for the run manifest, or ``None``
        when the slot was never used (no save, no resume)."""
        if not self.saves and not self.resumed:
            return None
        out: Dict[str, Any] = {
            "interval": self.interval,
            "saves": self.saves,
            "resumed": self.resumed,
            "last_id": self.last_id,
        }
        if self.resumed:
            out["resumed_from"] = self.resumed_from
            out["resumed_at"] = self.resumed_at
        return out


_ACTIVE: Optional[CheckpointSlot] = None


@contextmanager
def checkpoint_scope(path: Optional[Union[str, Path]], interval: Optional[float]):
    """Make a :class:`CheckpointSlot` active for the block (or none).

    Yields the slot, or ``None`` when *path*/*interval* is unset — so
    callers can wrap unconditionally and test the yield.
    """
    global _ACTIVE
    slot = (
        CheckpointSlot(path, interval)
        if path is not None and interval is not None
        else None
    )
    prev, _ACTIVE = _ACTIVE, slot
    try:
        yield slot
    finally:
        _ACTIVE = prev


def active_checkpoint() -> Optional[CheckpointSlot]:
    """The slot installed by the executor for this job attempt, if any."""
    return _ACTIVE
