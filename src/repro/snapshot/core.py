"""Checkpoint and restore of live simulations.

A snapshot captures a :class:`~repro.sim.engine.Simulator` *and
everything hanging off it* — the event heap with its pending callbacks
(bound methods keep their receivers, so queues, links, TCP senders,
monitors and web sessions ride along transitively), the derived RNG
streams mid-sequence, and any harness ``state`` object the caller passes
(the experiment harness passes its whole run context).  Restoring
produces an independent object graph whose continued execution is
bit-identical to the original run — the property the resume goldens in
``tests/snapshot`` pin.

What is **not** captured, by design:

* ``sim.profiler`` — a wall-clock observer; :class:`Simulator` refuses
  to pickle with one attached (detach, snapshot, reattach);
* open file handles (streaming trace writers) — their ``__getstate__``
  raises :class:`SnapshotError` naming the offending writer;
* the result cache / runner machinery — snapshots are below that layer.

On a pickling failure the error is re-raised as :class:`SnapshotError`
with a diagnosis of *which* scheduled callback or attachment cannot be
serialized (closures and lambdas are the usual culprits), rather than
the unpickler's bare ``TypeError``.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

from ..sim.engine import Simulator
from .errors import SnapshotError
from .format import (
    FORMAT_VERSION,
    build_header,
    read_header,
    read_snapshot,
    snapshot_id,
    write_snapshot,
)

__all__ = [
    "SnapshotInfo",
    "Restored",
    "capture_bytes",
    "restore_bytes",
    "save",
    "load",
    "inspect",
    "verify",
    "sim_summary",
]

#: protocol 4 is available on every supported Python and handles the
#: large, cyclic object graphs a warmed-up simulation produces
_PICKLE_PROTOCOL = 4


@dataclass(frozen=True)
class SnapshotInfo:
    """Header facts about one written snapshot."""

    path: Optional[Path]
    id: str
    parent: Optional[str]
    body_bytes: int
    sim_now: float
    events_processed: int

    @property
    def size_mb(self) -> float:
        """Checkpoint body size in megabytes (decimal)."""
        return self.body_bytes / 1e6


@dataclass
class Restored:
    """A restored simulation: the simulator, the harness state, the header."""

    sim: Simulator
    state: Any
    header: Dict[str, Any]

    @property
    def id(self) -> str:
        """The restored checkpoint's snapshot id (from its header)."""
        return self.header.get("id", "")


def sim_summary(sim: Simulator) -> Dict[str, Any]:
    """JSON-clean summary of a simulator for snapshot headers / diffs."""
    return {
        "now": sim.now,
        "seed": str(sim.seed),
        "events_processed": sim.events_processed,
        "pending": sim.pending(),
        "heap_len": len(sim._heap),
        "seq": sim._seq,
        "streams": sorted(sim._stream_labels),
    }


# ----------------------------------------------------------------------
# capture
# ----------------------------------------------------------------------
def capture_bytes(sim: Simulator, state: Any = None) -> bytes:
    """Pickle ``{"sim": sim, "state": state}`` with failure diagnostics."""
    root = {"sim": sim, "state": state}
    try:
        return pickle.dumps(root, protocol=_PICKLE_PROTOCOL)
    except SnapshotError:
        raise
    except Exception as exc:  # noqa: BLE001 - rewrap with a diagnosis
        raise _diagnose_failure(sim, state, exc) from exc


def _describe_callback(fn: Any) -> str:
    qualname = getattr(fn, "__qualname__", None) or repr(fn)
    owner = getattr(fn, "__self__", None)
    if owner is not None:
        return f"{qualname} (bound to {type(owner).__name__})"
    return qualname


def _diagnose_failure(sim: Simulator, state: Any, exc: Exception) -> SnapshotError:
    """Turn a raw pickling error into a SnapshotError naming the culprit.

    Only runs on the failure path, so the cost of re-pickling individual
    heap entries does not matter.  Each pending callback is probed in
    isolation; the first one that fails is almost always a closure or
    lambda scheduled where a bound method (or ``functools.partial`` of
    one) belongs.
    """
    for entry in sim.live_entries():
        fn, args = entry[2], entry[3]
        try:
            pickle.dumps((fn, args), protocol=_PICKLE_PROTOCOL)
        except SnapshotError as inner:
            return inner
        except Exception:  # noqa: BLE001
            name = getattr(fn, "__qualname__", "")
            hint = (
                " (closures/lambdas cannot be pickled; schedule a bound "
                "method or functools.partial instead)"
                if "<locals>" in name or "<lambda>" in name
                else ""
            )
            return SnapshotError(
                f"cannot snapshot: event at t={entry[0]:.6f} holds an "
                f"unpicklable callback {_describe_callback(fn)}{hint}"
            )
    try:
        pickle.dumps(state, protocol=_PICKLE_PROTOCOL)
    except SnapshotError as inner:
        return inner
    except Exception:  # noqa: BLE001
        return SnapshotError(
            f"cannot snapshot: the attached state object "
            f"({type(state).__name__}) is not picklable: {exc}"
        )
    return SnapshotError(f"cannot snapshot simulation: {exc}")


#: engine classes a snapshot may reference; remapped on cross-engine restore
_ENGINE_CLASS_NAMES = (
    "Simulator",
    "LegacySimulator",
    "ArraySimulator",
    "CompiledSimulator",
)

#: modules those classes may live in (the compiled package ships the
#: same engine contract under its own module names — see repro.compiled)
_ENGINE_MODULES = (
    "repro.sim.engine",
    "repro.compiled.engine",
    "repro.compiled._compiled_engine",
)


class _EngineRemapUnpickler(pickle.Unpickler):
    """Unpickler that rebinds the simulator class to a chosen engine.

    Snapshots pickle the concrete engine class by reference, so a body
    captured under one ``REPRO_ENGINE`` would normally restore under the
    same backend.  Both engines share one canonical state format (see
    ``Simulator.__getstate__``), which makes the class substitutable at
    load time: the target engine's ``__setstate__`` rebuilds its own
    internal event-list representation from the shared state.
    """

    def __init__(self, file, target_cls: type):
        super().__init__(file)
        self._target_cls = target_cls

    def find_class(self, module, name):
        if module in _ENGINE_MODULES and name in _ENGINE_CLASS_NAMES:
            return self._target_cls
        return super().find_class(module, name)


def restore_bytes(body: bytes, *, engine: Optional[str] = None) -> Tuple[Simulator, Any]:
    """Unpickle a snapshot body; returns ``(sim, state)``.

    *engine* (``"array"`` / ``"legacy"`` / ``"compiled"``) restores the
    simulator under that backend regardless of which one captured the
    snapshot; ``None`` keeps the capturing engine's class.  A snapshot
    captured under the compiled engine restores with ``engine=None`` in
    a process *without* the extension too: ``CompiledSimulator`` is
    always defined and simply runs its inherited pure-Python methods
    there (see :mod:`repro.compiled.engine`).
    """
    import io

    from ..sim.engine import get_engine_class

    try:
        if engine is None:
            root = pickle.loads(body)
        else:
            target = get_engine_class(engine)
            root = _EngineRemapUnpickler(io.BytesIO(body), target).load()
    except Exception as exc:  # noqa: BLE001
        raise SnapshotError(f"cannot restore snapshot body: {exc}") from exc
    if not isinstance(root, dict) or "sim" not in root:
        raise SnapshotError("snapshot body has unexpected layout (no 'sim')")
    return root["sim"], root.get("state")


# ----------------------------------------------------------------------
# file API
# ----------------------------------------------------------------------
def save(
    path: Union[str, Path],
    sim: Simulator,
    state: Any = None,
    *,
    label: Optional[str] = None,
    parent: Optional[str] = None,
    meta: Optional[Dict[str, Any]] = None,
) -> SnapshotInfo:
    """Checkpoint *sim* (+ harness *state*) to *path*; returns header facts.

    *parent* records lineage: pass the ``id`` of the snapshot this run
    was itself restored from (the runner does this automatically), so a
    chain of periodic checkpoints is traceable end to end.
    """
    body = capture_bytes(sim, state)
    header = build_header(
        body,
        sim_summary=sim_summary(sim),
        label=label,
        parent=parent,
        meta=meta,
    )
    out = write_snapshot(path, header, body)
    return SnapshotInfo(
        path=out,
        id=header["id"],
        parent=parent,
        body_bytes=len(body),
        sim_now=sim.now,
        events_processed=sim.events_processed,
    )


def load(
    path: Union[str, Path],
    *,
    verify_checksum: bool = True,
    allow_version_mismatch: bool = False,
) -> Restored:
    """Restore a snapshot file into a live ``(sim, state)`` pair.

    A snapshot written by a different package version fails by default:
    pickled internals are not a stable cross-version interface, and a
    silently wrong restore is far worse than a re-run.  Pass
    ``allow_version_mismatch=True`` to try anyway.
    """
    header, body = read_snapshot(path, verify=verify_checksum)
    from .. import __version__

    if header.get("repro_version") != __version__ and not allow_version_mismatch:
        raise SnapshotError(
            f"{path}: snapshot was written by repro "
            f"{header.get('repro_version')}, this is {__version__}; "
            f"re-run from scratch or pass allow_version_mismatch=True"
        )
    sim, state = restore_bytes(body)
    return Restored(sim=sim, state=state, header=header)


def inspect(path: Union[str, Path]) -> Dict[str, Any]:
    """Header of a snapshot file without touching the body."""
    return read_header(path)


def verify(path: Union[str, Path]) -> Dict[str, Any]:
    """Full integrity check: checksum, unpickle, and engine invariants.

    Returns the header augmented with a ``verified`` summary of the
    restored simulator.  Raises :class:`SnapshotError` on any failure.
    """
    header, body = read_snapshot(path, verify=True)
    sim, _state = restore_bytes(body)
    if not isinstance(sim, Simulator):
        raise SnapshotError(f"{path}: body 'sim' is {type(sim).__name__}")
    entries = sim.live_entries()
    if len(entries) != sim.pending():
        raise SnapshotError(
            f"{path}: live-event counter drift: heap holds {len(entries)} "
            f"live entries but pending() reports {sim.pending()}"
        )
    if entries:
        head_time = min(e[0] for e in entries)
        if head_time < sim.now:
            raise SnapshotError(
                f"{path}: event heap contains an entry at t={head_time} "
                f"before sim.now={sim.now}"
            )
        max_seq = max(e[1] for e in entries)
        if max_seq >= sim._seq:
            raise SnapshotError(
                f"{path}: heap sequence {max_seq} >= next sequence {sim._seq}"
            )
    expected_id = snapshot_id(body)
    if header.get("id") != expected_id:
        raise SnapshotError(
            f"{path}: snapshot id {header.get('id')} does not match body "
            f"({expected_id})"
        )
    out = dict(header)
    out["verified"] = sim_summary(sim)
    return out
