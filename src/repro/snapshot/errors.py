"""Snapshot error type, kept dependency-free.

This module deliberately imports nothing from the rest of the package so
that low-level components (``repro.sim.engine``, ``repro.obs.trace``)
can raise :class:`SnapshotError` from their ``__getstate__`` hooks via a
function-local import without creating an import cycle.
"""

from __future__ import annotations

__all__ = ["SnapshotError"]


class SnapshotError(RuntimeError):
    """A simulation state could not be checkpointed, restored, or verified.

    Raised instead of a bare pickling ``TypeError`` so the message can
    name the offending attachment (an attached profiler, an open trace
    writer, a closure scheduled on the event heap) and say how to detach
    it — the difference between a five-second fix and an afternoon in a
    pickle traceback.
    """
