"""On-disk snapshot container: versioned header + checksummed pickle body.

A snapshot file is three concatenated parts::

    REPROSNAP\n                  magic line (never changes)
    {"format": 1, ...}\n         one-line JSON header, UTF-8
    <pickle body>                the simulation object graph

The header is plain text on purpose: ``head -2 file.ckpt`` tells you
what a checkpoint contains without unpickling anything, and the CLI's
``inspect`` command works on files whose body no longer loads (e.g.
written by an incompatible package version).  Integrity is a SHA-256
over the body recorded in the header and verified on load; a truncated
or bit-flipped checkpoint fails with :class:`SnapshotError` instead of
feeding garbage to the unpickler.

Writes are atomic (temp file + ``os.replace``), matching the result
cache: a run killed mid-checkpoint leaves the previous checkpoint
intact, which is exactly what crash-resume needs.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

from .errors import SnapshotError

__all__ = [
    "FORMAT_VERSION",
    "MAGIC",
    "snapshot_id",
    "write_snapshot",
    "read_header",
    "read_snapshot",
]

#: bump when the container layout or body schema changes incompatibly
FORMAT_VERSION = 1

MAGIC = b"REPROSNAP\n"

#: hex digits of the body SHA-256 used as the snapshot's identity
_ID_LEN = 16


def snapshot_id(body: bytes) -> str:
    """Content-derived identity of a snapshot (prefix of the body hash)."""
    return hashlib.sha256(body).hexdigest()[:_ID_LEN]


def build_header(
    body: bytes,
    *,
    sim_summary: Optional[Dict[str, Any]] = None,
    label: Optional[str] = None,
    parent: Optional[str] = None,
    meta: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble the JSON header for *body* (hash, lineage, sim summary)."""
    from .. import __version__

    header: Dict[str, Any] = {
        "format": FORMAT_VERSION,
        "repro_version": __version__,
        "python": "%d.%d.%d" % sys.version_info[:3],
        "body_bytes": len(body),
        "body_sha256": hashlib.sha256(body).hexdigest(),
        "id": snapshot_id(body),
        "parent": parent,
    }
    if label is not None:
        header["label"] = label
    if sim_summary is not None:
        header["sim"] = sim_summary
    if meta:
        header["meta"] = dict(meta)
    return header


def write_snapshot(path: Union[str, Path], header: Dict[str, Any], body: bytes) -> Path:
    """Atomically write a snapshot file; returns the final path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    header_line = json.dumps(header, sort_keys=True).encode("utf-8")
    fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(MAGIC)
            fh.write(header_line)
            fh.write(b"\n")
            fh.write(body)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def read_header(path: Union[str, Path]) -> Dict[str, Any]:
    """Read and validate only the header of a snapshot file (no unpickle)."""
    path = Path(path)
    try:
        with open(path, "rb") as fh:
            magic = fh.read(len(MAGIC))
            if magic != MAGIC:
                raise SnapshotError(
                    f"{path}: not a repro snapshot (bad magic {magic!r})"
                )
            header_line = fh.readline()
    except OSError as exc:
        raise SnapshotError(f"{path}: cannot read snapshot: {exc}") from None
    try:
        header = json.loads(header_line.decode("utf-8"))
    except ValueError as exc:
        raise SnapshotError(f"{path}: corrupt snapshot header: {exc}") from None
    if not isinstance(header, dict) or "format" not in header:
        raise SnapshotError(f"{path}: snapshot header missing 'format' field")
    if header["format"] != FORMAT_VERSION:
        raise SnapshotError(
            f"{path}: snapshot format {header['format']} is not supported "
            f"by this package (expected {FORMAT_VERSION})"
        )
    return header


def read_snapshot(
    path: Union[str, Path], *, verify: bool = True
) -> Tuple[Dict[str, Any], bytes]:
    """Read header + body; with *verify*, check the body checksum."""
    path = Path(path)
    header = read_header(path)
    with open(path, "rb") as fh:
        fh.readline()  # magic
        fh.readline()  # header
        body = fh.read()
    if verify:
        expected = header.get("body_sha256")
        actual = hashlib.sha256(body).hexdigest()
        if actual != expected:
            raise SnapshotError(
                f"{path}: body checksum mismatch (file is truncated or "
                f"corrupt): expected {expected}, got {actual}"
            )
        if header.get("body_bytes") != len(body):
            raise SnapshotError(
                f"{path}: body length mismatch: header says "
                f"{header.get('body_bytes')} bytes, file has {len(body)}"
            )
    return header, body
