"""Progress counters and hooks for runner executions.

The executor updates one :class:`RunnerStats` per call to
:func:`repro.runner.run_jobs` and invokes the user's ``progress`` hook
with it after every job settles (fresh completion, cache hit, or final
failure).  ``events`` counts simulator events actually processed this
run — cache hits contribute nothing — so ``events_per_second`` is the
live simulation throughput the ROADMAP cares about.
"""

from __future__ import annotations

import os
import sys
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

__all__ = ["RunnerStats", "progress_printer", "resolve_progress"]

ProgressHook = Callable[["RunnerStats"], None]


@dataclass
class RunnerStats:
    """Live counters for one ``run_jobs`` call."""

    total: int
    done: int = 0  # fresh, successful jobs
    failed: int = 0  # jobs that exhausted their retries
    cached: int = 0  # served from the on-disk cache
    retries: int = 0  # extra attempts consumed
    events: int = 0  # simulator events processed by fresh jobs
    wall_time: float = 0.0  # summed per-job wall seconds (fresh jobs)
    peak_rss_kb: int = 0  # max peak RSS across fresh job processes
    started: float = field(default_factory=time.monotonic)

    @property
    def finished(self) -> int:
        """Jobs settled so far (fresh + failed + cache hits)."""
        return self.done + self.failed + self.cached

    def elapsed(self) -> float:
        """Wall seconds since this ``run_jobs`` call started (never 0)."""
        return max(1e-9, time.monotonic() - self.started)

    def events_per_second(self) -> float:
        """Live simulation throughput: fresh-job events over elapsed time."""
        return self.events / self.elapsed()

    def snapshot(self) -> Dict:
        """Immutable plain-dict view (handy for asserting in tests)."""
        return {
            "total": self.total,
            "done": self.done,
            "failed": self.failed,
            "cached": self.cached,
            "retries": self.retries,
            "events": self.events,
            "wall_time": self.wall_time,
            "peak_rss_kb": self.peak_rss_kb,
            "elapsed": self.elapsed(),
            "events_per_second": self.events_per_second(),
        }

    def summary(self) -> str:
        """One-line human-readable progress string for log output."""
        line = (
            f"{self.finished}/{self.total} jobs "
            f"({self.cached} cached, {self.failed} failed, "
            f"{self.retries} retries) "
            f"{self.events_per_second():,.0f} events/s"
        )
        if self.peak_rss_kb:
            line += f" peak_rss={self.peak_rss_kb}KB"
        return line


def progress_printer(stream=None) -> ProgressHook:
    """Hook that logs one summary line per settled job (stderr default)."""
    out = stream if stream is not None else sys.stderr

    def hook(stats: RunnerStats) -> None:
        print(f"[repro.runner] {stats.summary()}", file=out, flush=True)

    return hook


def resolve_progress(progress) -> Optional[ProgressHook]:
    """``None`` honours ``$REPRO_PROGRESS``; callables pass through."""
    if progress is not None:
        return progress if callable(progress) else None
    if os.environ.get("REPRO_PROGRESS", "").strip().lower() in {"1", "on", "true", "yes"}:
        return progress_printer()
    return None
