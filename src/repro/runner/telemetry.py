"""Progress counters and hooks for runner executions.

The executor updates one :class:`RunnerStats` per call to
:func:`repro.runner.run_jobs` and invokes the user's ``progress`` hook
with it after every job settles (fresh completion, cache hit, or final
failure).  ``events`` counts simulator events actually processed this
run — cache hits contribute nothing — so ``events_per_second`` is the
live simulation throughput the ROADMAP cares about.
"""

from __future__ import annotations

import os
import sys
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

__all__ = [
    "RunnerStats",
    "format_eta",
    "progress_line",
    "progress_printer",
    "resolve_progress",
]

ProgressHook = Callable[["RunnerStats"], None]


@dataclass
class RunnerStats:
    """Live counters for one ``run_jobs`` call."""

    total: int
    done: int = 0  # fresh, successful jobs
    failed: int = 0  # jobs that exhausted their retries
    cached: int = 0  # served from the on-disk cache
    retries: int = 0  # extra attempts consumed
    events: int = 0  # simulator events processed by fresh jobs
    wall_time: float = 0.0  # summed per-job wall seconds (fresh jobs)
    peak_rss_kb: int = 0  # max peak RSS across fresh job processes
    started: float = field(default_factory=time.monotonic)

    @property
    def finished(self) -> int:
        """Jobs settled so far (fresh + failed + cache hits)."""
        return self.done + self.failed + self.cached

    def elapsed(self) -> float:
        """Wall seconds since this ``run_jobs`` call started (never 0)."""
        return max(1e-9, time.monotonic() - self.started)

    def events_per_second(self) -> float:
        """Live simulation throughput: fresh-job events over elapsed time."""
        return self.events / self.elapsed()

    def snapshot(self) -> Dict:
        """Immutable plain-dict view (handy for asserting in tests)."""
        return {
            "total": self.total,
            "done": self.done,
            "failed": self.failed,
            "cached": self.cached,
            "retries": self.retries,
            "events": self.events,
            "wall_time": self.wall_time,
            "peak_rss_kb": self.peak_rss_kb,
            "elapsed": self.elapsed(),
            "events_per_second": self.events_per_second(),
        }

    def summary(self) -> str:
        """One-line human-readable progress string for log output."""
        line = (
            f"{self.finished}/{self.total} jobs "
            f"({self.cached} cached, {self.failed} failed, "
            f"{self.retries} retries) "
            f"{self.events_per_second():,.0f} events/s"
        )
        if self.peak_rss_kb:
            line += f" peak_rss={self.peak_rss_kb}KB"
        return line


def format_eta(seconds: Optional[float]) -> str:
    """Compact ETA: ``0:42``, ``3:05``, ``1:02:09``; ``-`` when unknown."""
    if seconds is None or seconds < 0:
        return "-"
    total = int(round(seconds))
    hours, rem = divmod(total, 3600)
    minutes, secs = divmod(rem, 60)
    if hours:
        return f"{hours}:{minutes:02d}:{secs:02d}"
    return f"{minutes}:{secs:02d}"


class _EwmaRate:
    """EWMA-smoothed settle rate (jobs/s) from successive observations.

    The raw per-job rate is spiky — cache hits settle in microseconds,
    fresh simulations in seconds — so the ETA uses an exponentially
    weighted moving average of the instantaneous rate instead (higher
    *alpha* tracks faster, smooths less).
    """

    def __init__(self, alpha: float = 0.3) -> None:
        self.alpha = alpha
        self._last_n: Optional[int] = None
        self._last_t: Optional[float] = None
        self.rate: Optional[float] = None

    def update(self, finished: int, now: float) -> Optional[float]:
        """Fold in an observation; return the smoothed jobs/s (or None)."""
        if self._last_n is not None and now > self._last_t and finished > self._last_n:
            inst = (finished - self._last_n) / (now - self._last_t)
            if self.rate is None:
                self.rate = inst
            else:
                self.rate = self.alpha * inst + (1 - self.alpha) * self.rate
        if self._last_n is None or finished != self._last_n:
            self._last_n, self._last_t = finished, now
        return self.rate


def progress_line(stats: RunnerStats, rate: Optional[float] = None) -> str:
    """The progress string: counters, events/s, smoothed rate and ETA.

    Pure formatting (no I/O, no clock reads beyond what *stats* holds),
    so unit tests can pin the output exactly.
    """
    line = f"[repro.runner] {stats.summary()}"
    if rate is not None and rate > 0:
        remaining = max(0, stats.total - stats.finished)
        line += f" | {rate:.2f} jobs/s eta {format_eta(remaining / rate)}"
    return line


def progress_printer(stream=None) -> ProgressHook:
    """Hook printing live progress with a smoothed job rate and ETA.

    On a TTY the line is redrawn in place (``\\r``, padded to cover the
    previous draw) with a final newline once every job has settled; on
    anything else — CI logs, redirected files — each settle appends one
    plain newline-terminated line, so logs never fill with carriage
    returns.  Defaults to stderr.
    """
    out = stream if stream is not None else sys.stderr
    is_tty = bool(getattr(out, "isatty", lambda: False)())
    ewma = _EwmaRate()
    last_width = 0

    def hook(stats: RunnerStats) -> None:
        nonlocal last_width
        rate = ewma.update(stats.finished, time.monotonic())
        line = progress_line(stats, rate)
        if is_tty:
            pad = " " * max(0, last_width - len(line))
            last_width = len(line)
            end = "\n" if stats.finished >= stats.total else ""
            print(f"\r{line}{pad}", file=out, end=end, flush=True)
        else:
            print(line, file=out, flush=True)

    return hook


def resolve_progress(progress) -> Optional[ProgressHook]:
    """``None`` honours ``$REPRO_PROGRESS``; callables pass through."""
    if progress is not None:
        return progress if callable(progress) else None
    if os.environ.get("REPRO_PROGRESS", "").strip().lower() in {"1", "on", "true", "yes"}:
        return progress_printer()
    return None
