"""Job-kind registry: names that worker processes resolve to callables.

A job function takes the spec's ``params`` dict and returns a
JSON-serializable payload.  Two resolution mechanisms:

* built-in / registered kinds — functions registered via :func:`register`
  in this module (importable from any worker, including spawn-start
  children, because registration happens at import time of
  ``repro.runner.registry``);
* dotted paths — a kind containing ``:`` is resolved as
  ``"package.module:function"``.  This is the extension point tests and
  downstream code use without touching the registry.

Runtime registrations made by the parent after import are visible to
fork-start workers (the default on Linux) but not to spawn-start ones;
dotted paths work everywhere.
"""

from __future__ import annotations

import importlib
from dataclasses import fields as dataclass_fields
from typing import Any, Callable, Dict

__all__ = ["register", "resolve_job", "registered_kinds"]

_REGISTRY: Dict[str, Callable[[dict], Any]] = {}


def register(kind: str) -> Callable:
    """Decorator: make *fn* invokable as job kind *kind*."""

    def deco(fn: Callable[[dict], Any]) -> Callable[[dict], Any]:
        _REGISTRY[kind] = fn
        return fn

    return deco


def registered_kinds():
    """Snapshot of the registered kind names (for introspection/tests)."""
    return sorted(_REGISTRY)


def resolve_job(kind: str) -> Callable[[dict], Any]:
    """Map a spec ``kind`` to its callable; raises ``KeyError`` if unknown."""
    try:
        return _REGISTRY[kind]
    except KeyError:
        pass
    if ":" in kind:
        module_name, attr = kind.split(":", 1)
        module = importlib.import_module(module_name)
        try:
            return getattr(module, attr)
        except AttributeError:
            raise KeyError(f"no attribute {attr!r} in module {module_name!r}") from None
    raise KeyError(
        f"unknown job kind {kind!r}; registered: {registered_kinds()} "
        f"(or use a 'module:function' dotted path)"
    )


@register("dumbbell")
def run_dumbbell_job(params: dict) -> Dict[str, Any]:
    """One dumbbell point: flatten the result dataclass to a JSON dict."""
    from ..experiments.common import DumbbellResult, run_dumbbell

    result = run_dumbbell(**params)
    return {
        f.name: getattr(result, f.name)
        for f in dataclass_fields(DumbbellResult)
        if f.name != "extras"
    }


@register("parking_lot")
def run_parking_lot_job(params: dict) -> Dict[str, Any]:
    """One Figure-11 parking-lot run (all hops of one scheme)."""
    from ..experiments.fig11_multibottleneck import run_parking_lot

    rows = run_parking_lot(**params)
    return {"rows": rows}
