"""On-disk JSON result cache keyed by :attr:`JobSpec.cache_key`.

Layout: ``<root>/<key[:2]>/<key>.json``, one file per result, written
atomically (tmp file + ``os.replace``) so a crashed run can never leave a
half-written entry.  Reads are defensive: anything that fails to parse or
fails basic shape/key validation is treated as a miss and the corrupt
file is removed so the entry is rebuilt on the next run.

Cache invalidation rules (documented in docs/ARCHITECTURE.md): the key
covers the full job spec plus ``repro.__version__`` and the runner's
``CACHE_SCHEMA``, so editing simulation parameters, bumping the package
version, or changing the payload schema each start a fresh namespace.
Old entries are inert files — delete the cache root to reclaim space.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional, Union

from ..obs.manifest import MANIFEST_SUFFIX, TRACE_SUFFIX
from .spec import JobSpec

__all__ = [
    "CHECKPOINT_SUFFIX",
    "ResultCache",
    "default_cache_dir",
    "resolve_cache",
]

_DISABLE_VALUES = {"0", "off", "false", "no"}

#: checkpoint filename suffix (sibling of the cache entry)
CHECKPOINT_SUFFIX = ".ckpt"


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro"


class ResultCache:
    """Directory of cached job results, addressed by spec hash."""

    def __init__(self, root: Optional[Union[str, Path]] = None):
        self.root = Path(root).expanduser() if root is not None else default_cache_dir()

    def path_for(self, spec: JobSpec) -> Path:
        """Cache-entry path for *spec*: ``<root>/<key[:2]>/<key>.json``."""
        key = spec.cache_key
        return self.root / key[:2] / f"{key}.json"

    def manifest_path_for(self, spec: JobSpec) -> Path:
        """Sibling run-manifest path for *spec* (see :mod:`repro.obs.manifest`)."""
        key = spec.cache_key
        return self.root / key[:2] / f"{key}{MANIFEST_SUFFIX}"

    def trace_path_for(self, spec: JobSpec) -> Path:
        """Sibling JSONL trace path for *spec* (written with ``--trace``)."""
        key = spec.cache_key
        return self.root / key[:2] / f"{key}{TRACE_SUFFIX}"

    def checkpoint_path_for(self, spec: JobSpec) -> Path:
        """Sibling checkpoint path for *spec* (see :mod:`repro.snapshot`).

        The checkpoint shares the cache entry's key on purpose: a resumed
        run is bit-identical to a straight-through one, so the checkpoint
        is an implementation detail of producing the *same* cache entry,
        and it survives retries of the same spec only.
        """
        key = spec.cache_key
        return self.root / key[:2] / f"{key}{CHECKPOINT_SUFFIX}"

    def get(self, spec: JobSpec) -> Optional[Dict[str, Any]]:
        """Return the stored entry dict for *spec*, or ``None`` on a miss.

        A corrupt or mismatched file counts as a miss and is deleted so
        the entry gets rebuilt by the caller.
        """
        path = self.path_for(spec)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                entry = json.load(fh)
        except FileNotFoundError:
            return None
        except (OSError, ValueError):
            self._discard(path)
            return None
        if (
            not isinstance(entry, dict)
            or entry.get("key") != spec.cache_key
            or "payload" not in entry
        ):
            self._discard(path)
            return None
        return entry

    def put(self, spec: JobSpec, payload: Any, meta: Optional[Dict] = None) -> Path:
        """Atomically persist *payload* for *spec*; returns the file path."""
        path = self.path_for(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "key": spec.cache_key,
            "kind": spec.kind,
            "params": spec.params,
            "payload": payload,
            "meta": meta or {},
        }
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(entry, fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    @staticmethod
    def _discard(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ResultCache root={self.root}>"


def resolve_cache(cache) -> Optional[ResultCache]:
    """Normalize the user-facing ``cache`` argument.

    ``None``
        use the default on-disk cache, unless disabled via
        ``REPRO_CACHE=0`` (also ``off``/``false``/``no``);
    ``False``
        caching off;
    :class:`ResultCache`
        used as-is;
    str / :class:`~pathlib.Path`
        cache rooted at that directory.
    """
    if cache is None:
        flag = os.environ.get("REPRO_CACHE", "").strip().lower()
        if flag in _DISABLE_VALUES:
            return None
        return ResultCache()
    if cache is False:
        return None
    if isinstance(cache, ResultCache):
        return cache
    return ResultCache(cache)
