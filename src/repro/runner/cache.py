"""On-disk JSON result cache keyed by :attr:`JobSpec.cache_key`.

Layout: ``<root>/<key[:2]>/<key>.json``, one file per result, written
atomically (tmp file + ``os.replace``) so a crashed run can never leave a
half-written entry.  Reads are defensive: anything that fails to parse or
fails basic shape/key validation is treated as a miss and the corrupt
file is removed so the entry is rebuilt on the next run.

Cache invalidation rules (documented in docs/ARCHITECTURE.md): the key
is a **content address** over the full job spec (``kind`` + canonical
params) plus the runner's ``CACHE_SCHEMA`` — editing simulation
parameters or bumping the payload schema starts a fresh namespace, while
package-version bumps do *not*: a point computed once is a hit for every
later sweep that asks for the same content.  Old entries are inert
files — delete the cache root to reclaim space.

Migration: cache directories written before schema 2 (whose keys were
additionally salted with ``repro.__version__``) are rehashed in place by
:func:`migrate_cache` — invoked automatically, one-shot, the first time
a :class:`ResultCache` opens such a directory.  A ``cache-schema.json``
marker records the migrated schema so later opens skip the scan.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional, Union

from ..obs.manifest import MANIFEST_SUFFIX, TRACE_SUFFIX
from .spec import CACHE_SCHEMA, JobSpec

__all__ = [
    "CHECKPOINT_SUFFIX",
    "SCHEMA_MARKER",
    "ResultCache",
    "default_cache_dir",
    "migrate_cache",
    "resolve_cache",
]

_DISABLE_VALUES = {"0", "off", "false", "no"}

#: checkpoint filename suffix (sibling of the cache entry)
CHECKPOINT_SUFFIX = ".ckpt"

#: marker file recording the keying schema a cache dir was migrated to
SCHEMA_MARKER = "cache-schema.json"


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro"


def migrate_cache(root: Union[str, Path]) -> int:
    """One-shot migration of *root* to content-addressed (schema 2) keys.

    Walks every cache entry, recomputes its content address from the
    stored ``kind`` + ``params``, and moves mis-keyed entries (schema-1
    keys were version-salted) to their new location — along with their
    sibling manifest, trace and checkpoint files, with the manifest's
    ``key`` field rewritten to match.  Entries that already live at
    their content address are untouched, so the migration is idempotent
    and safe to race: both racers compute identical targets and writes
    are atomic renames.

    Returns the number of entries rehashed; writes the
    :data:`SCHEMA_MARKER` so subsequent :class:`ResultCache` opens skip
    the scan entirely.  Unparseable files are left alone (the normal
    corrupt-entry handling discards them on first ``get``).
    """
    root = Path(root)
    moved = 0
    if root.is_dir():
        for path in sorted(root.glob("??/*.json")):
            name = path.name
            if name.endswith(MANIFEST_SUFFIX) or len(name) != 64 + len(".json"):
                continue
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    entry = json.load(fh)
            except (OSError, ValueError):
                continue
            if not isinstance(entry, dict) or "payload" not in entry:
                continue
            kind, params = entry.get("kind"), entry.get("params")
            if not isinstance(kind, str) or not isinstance(params, dict):
                continue
            try:
                spec = JobSpec(kind, params)
            except TypeError:
                continue
            key = spec.cache_key
            if entry.get("key") == key and name == f"{key}.json":
                continue
            entry["key"] = key
            new_path = root / key[:2] / f"{key}.json"
            new_path.parent.mkdir(parents=True, exist_ok=True)
            _atomic_dump(entry, new_path)
            old_key = name[: -len(".json")]
            for suffix in (MANIFEST_SUFFIX, TRACE_SUFFIX, CHECKPOINT_SUFFIX):
                sib = path.parent / f"{old_key}{suffix}"
                target = new_path.parent / f"{key}{suffix}"
                if not sib.exists() or target.exists():
                    continue
                if suffix == MANIFEST_SUFFIX:
                    try:
                        with open(sib, "r", encoding="utf-8") as fh:
                            manifest = json.load(fh)
                        manifest["key"] = key
                        _atomic_dump(manifest, target)
                        sib.unlink()
                        continue
                    except (OSError, ValueError):
                        pass  # fall through to a plain rename
                try:
                    os.replace(sib, target)
                except OSError:
                    pass
            try:
                path.unlink()
            except OSError:
                pass
            moved += 1
        _atomic_dump({"cache_schema": CACHE_SCHEMA}, root / SCHEMA_MARKER)
    return moved


def _atomic_dump(obj: Dict, path: Path) -> None:
    """JSON-dump *obj* to *path* via the tmp-file + rename pattern."""
    fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(obj, fh)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class ResultCache:
    """Directory of cached job results, addressed by content hash."""

    def __init__(self, root: Optional[Union[str, Path]] = None):
        self.root = Path(root).expanduser() if root is not None else default_cache_dir()
        self._ensure_schema()

    def _ensure_schema(self) -> None:
        """Migrate a pre-content-addressing directory exactly once.

        The marker check is one ``stat`` on the hot path; only a root
        that exists without a current marker pays the one-shot
        :func:`migrate_cache` scan.
        """
        if not self.root.is_dir():
            return
        try:
            with open(self.root / SCHEMA_MARKER, "r", encoding="utf-8") as fh:
                if json.load(fh).get("cache_schema") == CACHE_SCHEMA:
                    return
        except (OSError, ValueError):
            pass
        migrate_cache(self.root)

    def path_for(self, spec: JobSpec) -> Path:
        """Cache-entry path for *spec*: ``<root>/<key[:2]>/<key>.json``."""
        key = spec.cache_key
        return self.root / key[:2] / f"{key}.json"

    def manifest_path_for(self, spec: JobSpec) -> Path:
        """Sibling run-manifest path for *spec* (see :mod:`repro.obs.manifest`)."""
        key = spec.cache_key
        return self.root / key[:2] / f"{key}{MANIFEST_SUFFIX}"

    def trace_path_for(self, spec: JobSpec) -> Path:
        """Sibling JSONL trace path for *spec* (written with ``--trace``)."""
        key = spec.cache_key
        return self.root / key[:2] / f"{key}{TRACE_SUFFIX}"

    def checkpoint_path_for(self, spec: JobSpec) -> Path:
        """Sibling checkpoint path for *spec* (see :mod:`repro.snapshot`).

        The checkpoint shares the cache entry's key on purpose: a resumed
        run is bit-identical to a straight-through one, so the checkpoint
        is an implementation detail of producing the *same* cache entry,
        and it survives retries of the same spec only.
        """
        key = spec.cache_key
        return self.root / key[:2] / f"{key}{CHECKPOINT_SUFFIX}"

    def get(self, spec: JobSpec) -> Optional[Dict[str, Any]]:
        """Return the stored entry dict for *spec*, or ``None`` on a miss.

        A corrupt or mismatched file counts as a miss and is deleted so
        the entry gets rebuilt by the caller.
        """
        path = self.path_for(spec)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                entry = json.load(fh)
        except FileNotFoundError:
            return None
        except (OSError, ValueError):
            self._discard(path)
            return None
        if (
            not isinstance(entry, dict)
            or entry.get("key") != spec.cache_key
            or "payload" not in entry
        ):
            self._discard(path)
            return None
        return entry

    def put(self, spec: JobSpec, payload: Any, meta: Optional[Dict] = None) -> Path:
        """Atomically persist *payload* for *spec*; returns the file path."""
        path = self.path_for(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "key": spec.cache_key,
            "kind": spec.kind,
            "params": spec.params,
            "payload": payload,
            "meta": meta or {},
        }
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(entry, fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    @staticmethod
    def _discard(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ResultCache root={self.root}>"


def resolve_cache(cache) -> Optional[ResultCache]:
    """Normalize the user-facing ``cache`` argument.

    ``None``
        use the default on-disk cache, unless disabled via
        ``REPRO_CACHE=0`` (also ``off``/``false``/``no``);
    ``False``
        caching off;
    :class:`ResultCache`
        used as-is;
    str / :class:`~pathlib.Path`
        cache rooted at that directory.
    """
    if cache is None:
        flag = os.environ.get("REPRO_CACHE", "").strip().lower()
        if flag in _DISABLE_VALUES:
            return None
        return ResultCache()
    if cache is False:
        return None
    if isinstance(cache, ResultCache):
        return cache
    return ResultCache(cache)
