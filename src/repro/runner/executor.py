"""Process fan-out executor with caching, timeouts and bounded retry.

Jobs are deterministic functions of their :class:`JobSpec`, so execution
strategy is purely an operational choice:

* ``workers=0`` — serial, in-process.  The debugging fallback: plain
  stack traces, no forking, ``pdb`` works.  Timeouts cannot be enforced
  without process isolation and are ignored (a warning-level note is in
  the docs, not a runtime surprise).
* ``workers=N`` — up to N concurrent **one-shot worker processes**, one
  per job attempt.  One process per job (rather than a long-lived pool)
  is what buys crash isolation: a segfaulting or diverging simulation
  kills only its own process, the scheduler notices the dead/overdue
  worker, retries up to ``retries`` times, and finally marks the job
  failed — the rest of the sweep is unaffected.

Results are returned in spec order regardless of completion order, which
is what makes ``workers=N`` output row-for-row identical to ``workers=0``.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..obs.bus import EventBus, bus_scope, heartbeat_loop, resolve_bus_path
from ..obs.manifest import build_manifest, write_manifest
from ..obs.runtime import observe_job
from ..obs.trace import write_trace
from ..snapshot.runtime import checkpoint_scope, resolve_checkpoint_interval
from .cache import ResultCache, resolve_cache
from .registry import resolve_job
from .spec import JobSpec
from .telemetry import RunnerStats, resolve_progress

__all__ = ["JobResult", "record_observation", "run_jobs", "resolve_workers"]

#: scheduler poll interval while waiting on worker processes (seconds)
_POLL_INTERVAL = 0.005
#: grace period for a worker that already sent its result to exit
_JOIN_GRACE = 5.0


@dataclass
class JobResult:
    """Outcome of one job: payload on success, error text on failure."""

    spec: JobSpec
    status: str  # "ok" | "failed"
    value: Any = None
    error: Optional[str] = None
    cached: bool = False
    attempts: int = 0
    wall_time: float = 0.0
    meta: Dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when the job produced a payload (fresh run or cache hit)."""
        return self.status == "ok"


def resolve_workers(workers: Optional[int]) -> int:
    """``None`` honours ``$REPRO_WORKERS``; absent both, run serially."""
    if workers is None:
        env = os.environ.get("REPRO_WORKERS", "").strip()
        workers = int(env) if env else 0
    workers = int(workers)
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    return workers


def _events_of(payload: Any) -> int:
    """Simulator events reported by a job payload, if it carries any."""
    if isinstance(payload, dict):
        v = payload.get("events_processed")
        if isinstance(v, (int, float)) and not isinstance(v, bool):
            return int(v)
    return 0


def _child_main(kind: str, params: dict, conn, ckpt_path=None, ckpt_interval=None,
                bus_path=None, job_key=None) -> None:
    """Worker-process entry point: run one job, ship one message back.

    The job runs inside an :func:`observe_job` context so phase timings,
    peak RSS and (when ``REPRO_OBS``/``REPRO_TRACE`` are set) metrics and
    trace records ride back to the parent alongside the payload; the
    payload itself stays untouched, so cached results are byte-identical
    with observability on or off.

    When checkpointing is enabled a :func:`checkpoint_scope` wraps the
    job as well: a checkpoint-aware job resumes from *ckpt_path* if a
    previous attempt left one (crash/timeout recovery) and saves
    periodically.  On success the checkpoint file is deleted and its
    lineage summary rides back in the observation under ``checkpoint``.

    When the telemetry bus is enabled (*bus_path*), the worker opens its
    own :class:`~repro.obs.bus.EventBus` scoped to *job_key* so phase
    transitions, checkpoint resumes and a wall-clock heartbeat thread
    publish live progress straight into the run's ``events.jsonl`` —
    the parent never proxies live telemetry, so a hung parent cannot
    stall a worker.
    """
    try:
        with bus_scope(bus_path, job=job_key) as bus, \
                observe_job() as obs, \
                heartbeat_loop(bus), \
                checkpoint_scope(ckpt_path, ckpt_interval) as slot:
            payload = resolve_job(kind)(dict(params))
        obs_meta = obs.finish()
        if slot is not None:
            lineage = slot.summary()
            if lineage is not None:
                obs_meta["checkpoint"] = lineage
            slot.discard()
        conn.send(("ok", payload, obs_meta))
    except BaseException as exc:  # noqa: BLE001 - isolate *any* job failure
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}", None))
        except Exception:
            pass
    finally:
        conn.close()


def _mp_context():
    """Fork where available (fast, inherits runtime registrations)."""
    method = os.environ.get("REPRO_MP_START", "").strip() or None
    if method is None and "fork" in multiprocessing.get_all_start_methods():
        method = "fork"
    return multiprocessing.get_context(method)


class _Running:
    """Bookkeeping for one in-flight worker process."""

    __slots__ = ("index", "proc", "conn", "deadline", "attempt", "t0")

    def __init__(self, index, proc, conn, deadline, attempt, t0):
        self.index = index
        self.proc = proc
        self.conn = conn
        self.deadline = deadline
        self.attempt = attempt
        self.t0 = t0


def run_jobs(
    specs: Sequence[JobSpec],
    *,
    workers: Optional[int] = None,
    cache=None,
    timeout: Optional[float] = None,
    retries: int = 1,
    progress=None,
    checkpoint: Optional[float] = None,
    bus=None,
) -> List[JobResult]:
    """Execute *specs*, returning one :class:`JobResult` per spec, in order.

    Parameters
    ----------
    workers:
        Concurrent worker processes; ``0`` runs serially in-process and
        ``None`` defers to ``$REPRO_WORKERS`` (default serial).
    cache:
        See :func:`repro.runner.cache.resolve_cache`; ``None`` enables the
        default on-disk cache, ``False`` disables caching.
    timeout:
        Per-attempt wall-clock limit in seconds; an overdue worker is
        killed and the attempt counts as a failure.  Requires
        ``workers > 0`` (process isolation) to be enforceable.
    retries:
        Extra attempts after a raised exception, crash, or timeout.
    progress:
        Callable invoked with the live :class:`RunnerStats` after each
        job settles; ``None`` defers to ``$REPRO_PROGRESS``.
    checkpoint:
        Simulated seconds between periodic checkpoints of checkpoint-aware
        jobs (see :mod:`repro.snapshot`); ``None`` defers to
        ``$REPRO_CHECKPOINT`` (default off).  A killed, crashed or
        timed-out attempt resumes from the last checkpoint instead of
        starting over — bit-identically, so specs and cache keys are
        unaffected.  Requires an enabled cache (the checkpoint lives next
        to the job's cache entry); silently off otherwise.
    bus:
        Live telemetry bus (see :mod:`repro.obs.bus`): ``None`` defers to
        ``$REPRO_BUS`` (default off), ``False`` disables, a str/Path
        names the JSONL file explicitly.  Enabled, the scheduler and
        every worker publish job lifecycle/heartbeat events there —
        purely observational, results are bit-identical either way.
    """
    specs = list(specs)
    n_workers = resolve_workers(workers)
    store: Optional[ResultCache] = resolve_cache(cache)
    ckpt_interval = resolve_checkpoint_interval(checkpoint) if store is not None else None
    hook = resolve_progress(progress)
    stats = RunnerStats(total=len(specs))
    results: List[Optional[JobResult]] = [None] * len(specs)
    bus_path = resolve_bus_path(store, bus)
    live: Optional[EventBus] = EventBus(bus_path) if bus_path is not None else None

    def settle(index: int, result: JobResult) -> None:
        results[index] = result
        if result.cached:
            stats.cached += 1
        elif result.ok:
            stats.done += 1
        else:
            stats.failed += 1
        stats.events += 0 if result.cached else _events_of(result.value)
        if live is not None:
            if result.cached:
                live.emit("job_cached", key=result.spec.cache_key)
            elif result.ok:
                live.emit(
                    "job_finished", key=result.spec.cache_key,
                    wall_time=result.wall_time,
                    events=_events_of(result.value),
                    attempts=result.attempts,
                )
            else:
                live.emit(
                    "job_failed", key=result.spec.cache_key,
                    error=(result.error or "")[:500],
                    attempts=result.attempts,
                )
        if hook is not None:
            hook(stats)

    def announce(index: int, attempt: int) -> None:
        if live is None:
            return
        spec = specs[index]
        live.emit(
            "job_started", key=spec.cache_key, kind=spec.kind,
            scheme=spec.params.get("scheme"), seed=spec.params.get("seed"),
            attempt=attempt,
        )

    if live is not None:
        live.emit("run_started", total=len(specs))

    # ---- cache pass: satisfy what we can without simulating ------------
    misses: List[int] = []
    for i, spec in enumerate(specs):
        entry = store.get(spec) if store is not None else None
        if entry is not None:
            settle(i, JobResult(
                spec, "ok", value=entry["payload"], cached=True,
                attempts=0, meta=entry.get("meta") or {},
            ))
        else:
            misses.append(i)

    if not misses:
        if live is not None:
            live.emit("run_finished", stats=stats.snapshot())
            live.close()
        return [r for r in results if r is not None]

    def record_success(
        index: int, payload: Any, attempt: int, wall: float, obs_meta=None
    ) -> None:
        spec = specs[index]
        meta = {"events": _events_of(payload), "wall_time": wall, "attempts": attempt}
        stats.wall_time += wall
        if obs_meta:
            rss = obs_meta.get("peak_rss_kb")
            if isinstance(rss, int):
                stats.peak_rss_kb = max(stats.peak_rss_kb, rss)
        if store is not None:
            store.put(spec, payload, meta=meta)
            record_observation(store, spec, meta, payload, obs_meta)
        settle(index, JobResult(
            spec, "ok", value=payload, attempts=attempt, wall_time=wall, meta=meta,
        ))

    def ckpt_path_of(spec: JobSpec):
        if ckpt_interval is None or store is None:
            return None
        return store.checkpoint_path_for(spec)

    try:
        if n_workers == 0:
            _run_serial(
                specs, misses, retries, stats, record_success, settle,
                ckpt_path_of, ckpt_interval, announce, live, bus_path,
            )
        else:
            _run_parallel(
                specs, misses, n_workers, timeout, retries, stats,
                record_success, settle, ckpt_path_of, ckpt_interval,
                announce, live, bus_path,
            )
        if live is not None:
            live.emit("run_finished", stats=stats.snapshot())
    finally:
        if live is not None:
            live.close()
    return [r for r in results if r is not None]


def record_observation(store, spec, meta, payload, obs_meta) -> None:
    """Persist the job's run manifest (and trace) next to its cache entry.

    Manifest writes are best-effort: a full disk or permission hiccup on
    the forensic record must not fail a job whose payload already landed.
    Shared with :mod:`repro.fleet.worker`, which stores results through
    the same content-addressed layout.
    """
    obs_meta = dict(obs_meta) if obs_meta else {}
    trace_records = obs_meta.pop("trace_records", None)
    trace_file = None
    try:
        if trace_records is not None:
            trace_path = store.trace_path_for(spec)
            write_trace(trace_path, trace_records)
            trace_file = trace_path.name
        manifest = build_manifest(
            key=spec.cache_key,
            kind=spec.kind,
            params=spec.params,
            wall_time=meta["wall_time"],
            events=meta["events"],
            attempts=meta["attempts"],
            payload=payload,
            obs_meta=obs_meta,
            trace_file=trace_file,
        )
        write_manifest(store.manifest_path_for(spec), manifest)
    except OSError:  # pragma: no cover - disk trouble
        pass


# ----------------------------------------------------------------------
# serial fallback
# ----------------------------------------------------------------------
def _run_serial(
    specs, misses, retries, stats, record_success, settle,
    ckpt_path_of, ckpt_interval, announce, live, bus_path,
) -> None:
    for index in misses:
        spec = specs[index]
        error = None
        for attempt in range(1, retries + 2):
            if attempt > 1:
                stats.retries += 1
                if live is not None:
                    live.emit("job_retried", key=spec.cache_key,
                              attempt=attempt - 1)
            announce(index, attempt)
            t0 = time.monotonic()
            try:
                with bus_scope(bus_path, job=spec.cache_key) as job_bus, \
                        observe_job() as obs, \
                        heartbeat_loop(job_bus), \
                        checkpoint_scope(
                            ckpt_path_of(spec), ckpt_interval
                        ) as slot:
                    payload = resolve_job(spec.kind)(dict(spec.params))
            except Exception as exc:  # noqa: BLE001 - keep the sweep alive
                error = f"{type(exc).__name__}: {exc}"
                continue
            obs_meta = obs.finish()
            if slot is not None:
                lineage = slot.summary()
                if lineage is not None:
                    obs_meta["checkpoint"] = lineage
                slot.discard()
            record_success(
                index, payload, attempt, time.monotonic() - t0, obs_meta,
            )
            break
        else:
            settle(index, JobResult(
                spec, "failed", error=error, attempts=retries + 1,
            ))


# ----------------------------------------------------------------------
# process fan-out
# ----------------------------------------------------------------------
def _run_parallel(
    specs, misses, n_workers, timeout, retries, stats, record_success, settle,
    ckpt_path_of, ckpt_interval, announce, live, bus_path,
) -> None:
    ctx = _mp_context()
    queue: List[tuple] = [(i, 1) for i in misses]  # (spec index, attempt no.)
    queue.reverse()  # pop() from the tail keeps submission order
    running: List[_Running] = []

    def launch(index: int, attempt: int) -> None:
        spec = specs[index]
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_child_main,
            args=(
                spec.kind, spec.params, child_conn,
                ckpt_path_of(spec), ckpt_interval,
                bus_path, spec.cache_key,
            ),
            daemon=True,
        )
        proc.start()
        child_conn.close()  # parent keeps only the read end
        announce(index, attempt)
        now = time.monotonic()
        deadline = now + timeout if timeout is not None else None
        running.append(_Running(index, proc, parent_conn, deadline, attempt, now))

    def reap(slot: _Running) -> None:
        slot.conn.close()
        if slot.proc.is_alive():
            slot.proc.terminate()
            slot.proc.join(_JOIN_GRACE)
            if slot.proc.is_alive():  # pragma: no cover - stubborn child
                slot.proc.kill()
                slot.proc.join(_JOIN_GRACE)
        else:
            slot.proc.join()

    def retry_or_fail(slot: _Running, error: str) -> None:
        if slot.attempt <= retries:
            stats.retries += 1
            if live is not None:
                live.emit("job_retried", key=specs[slot.index].cache_key,
                          attempt=slot.attempt)
            queue.append((slot.index, slot.attempt + 1))
        else:
            settle(slot.index, JobResult(
                specs[slot.index], "failed", error=error, attempts=slot.attempt,
            ))

    try:
        while queue or running:
            while queue and len(running) < n_workers:
                index, attempt = queue.pop()
                launch(index, attempt)

            now = time.monotonic()
            still_running: List[_Running] = []
            progressed = False
            for slot in running:
                message = None
                if slot.conn.poll():
                    try:
                        message = slot.conn.recv()
                    except (EOFError, OSError):
                        message = None
                if message is not None:
                    status, body, obs_meta = message
                    reap(slot)
                    wall = now - slot.t0
                    if status == "ok":
                        record_success(slot.index, body, slot.attempt, wall, obs_meta)
                    else:
                        retry_or_fail(slot, body)
                    progressed = True
                elif not slot.proc.is_alive():
                    reap(slot)
                    retry_or_fail(
                        slot,
                        f"worker crashed without result "
                        f"(exit code {slot.proc.exitcode})",
                    )
                    progressed = True
                elif slot.deadline is not None and now > slot.deadline:
                    reap(slot)
                    retry_or_fail(slot, f"timed out after {timeout}s")
                    progressed = True
                else:
                    still_running.append(slot)
            running = still_running
            if not progressed and running:
                time.sleep(_POLL_INTERVAL)
    finally:
        for slot in running:  # pragma: no cover - only on interrupt
            reap(slot)
