"""Parallel, cached execution of simulation jobs.

The grid-shaped experiments (Figures 6-9, Table 1, Figure 11) are
embarrassingly parallel: every (scheme, point, seed) cell is an
independent deterministic simulation.  This subsystem turns that into
wall-clock speed and incremental re-runs:

* :class:`JobSpec` — pure-data job description hashed into a stable key;
* :class:`ResultCache` — on-disk JSON cache (``~/.cache/repro`` or
  ``$REPRO_CACHE_DIR``) so re-running a figure only simulates changed
  points;
* :func:`run_jobs` — process fan-out with per-job timeout, bounded
  retry, and crash isolation; ``workers=0`` is the serial debug path;
* :class:`RunnerStats` — jobs done/failed/cached plus events-per-second
  throughput, delivered through a ``progress`` hook.

Determinism guarantee: for the same specs, ``run_jobs`` returns the same
results in the same (spec) order whether executed serially, in parallel,
or from cache — enforced by ``tests/runner/``.
"""

from .cache import ResultCache, default_cache_dir, migrate_cache, resolve_cache
from .executor import JobResult, resolve_workers, run_jobs
from .registry import register, registered_kinds, resolve_job
from .spec import (
    CACHE_SCHEMA,
    JobSpec,
    canonical_json,
    content_key,
    dumbbell_spec,
    parking_lot_spec,
)
from .telemetry import (
    RunnerStats,
    format_eta,
    progress_line,
    progress_printer,
    resolve_progress,
)

__all__ = [
    "CACHE_SCHEMA",
    "JobResult",
    "JobSpec",
    "ResultCache",
    "RunnerStats",
    "canonical_json",
    "content_key",
    "default_cache_dir",
    "dumbbell_spec",
    "migrate_cache",
    "format_eta",
    "parking_lot_spec",
    "progress_line",
    "progress_printer",
    "register",
    "registered_kinds",
    "resolve_cache",
    "resolve_job",
    "resolve_progress",
    "resolve_workers",
    "run_jobs",
]
