"""Deterministic job specifications and stable cache keys.

A :class:`JobSpec` is a pure-data description of one simulation job: a
registered job *kind* (see :mod:`repro.runner.registry`) plus a
JSON-serializable parameter mapping.  Because the simulator is a
deterministic function of its parameters and seed, the spec fully
determines the result — which is what makes both process fan-out and
on-disk caching safe: the cache key is a SHA-256 over the canonical JSON
encoding of the spec, salted with the package version and a cache schema
number so that result-format or engine-version changes invalidate stale
entries instead of silently serving them.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict

from .. import __version__

__all__ = [
    "CACHE_SCHEMA",
    "JobSpec",
    "canonical_json",
    "dumbbell_spec",
    "parking_lot_spec",
]

#: bump when the payload layout of cached results changes incompatibly
CACHE_SCHEMA = 1


def canonical_json(obj: Any) -> str:
    """Stable JSON encoding: sorted keys, no whitespace, shortest floats.

    Raises ``TypeError`` for values that cannot round-trip through JSON,
    which is deliberate — a spec that cannot be serialized cannot be
    hashed, cached, or shipped to a worker process.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class JobSpec:
    """One unit of work for the runner: ``kind`` + JSON params."""

    kind: str
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        # Fail fast (at spec-construction time, in the parent process)
        # rather than deep inside a worker: params must be JSON-clean.
        canonical_json(self.params)

    @property
    def cache_key(self) -> str:
        """Hex SHA-256 uniquely identifying this job's result."""
        material = (
            f"{CACHE_SCHEMA}|{__version__}|{self.kind}|"
            f"{canonical_json(self.params)}"
        )
        return hashlib.sha256(material.encode("utf-8")).hexdigest()

    def describe(self) -> str:
        """Short human label for logs: kind plus the identifying params."""
        scheme = self.params.get("scheme")
        seed = self.params.get("seed")
        bits = [self.kind]
        if scheme is not None:
            bits.append(str(scheme))
        if seed is not None:
            bits.append(f"seed={seed}")
        return "/".join(bits)


def dumbbell_spec(scheme: str, **kwargs) -> JobSpec:
    """Spec for one :func:`repro.experiments.common.run_dumbbell` point.

    The seed is made explicit (defaulting to ``run_dumbbell``'s own
    default of 1) so that the cache key always covers scheme + kwargs +
    seed, even when the caller relies on the default.
    """
    params = dict(kwargs)
    params["scheme"] = scheme
    params.setdefault("seed", 1)
    return JobSpec(kind="dumbbell", params=params)


def parking_lot_spec(scheme: str, **kwargs) -> JobSpec:
    """Spec for one parking-lot run (Figure 11), one scheme per job."""
    params = dict(kwargs)
    params["scheme"] = scheme
    params.setdefault("seed", 1)
    return JobSpec(kind="parking_lot", params=params)
