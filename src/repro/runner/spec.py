"""Deterministic job specifications and stable cache keys.

A :class:`JobSpec` is a pure-data description of one simulation job: a
registered job *kind* (see :mod:`repro.runner.registry`) plus a
JSON-serializable parameter mapping.  Because the simulator is a
deterministic function of its parameters and seed, the spec fully
determines the result — which is what makes process fan-out, on-disk
caching and the fleet's cross-sweep dedupe safe: the cache key is a
**content address**, a SHA-256 over the canonical JSON encoding of
``kind`` + ``params`` plus a cache schema number.  Identical points hash
identically everywhere — across sweeps, across fleet directories, and
across package versions — so a result computed once is served forever;
``CACHE_SCHEMA`` is the one deliberate invalidation knob, bumped when
the payload layout (or the keying itself) changes incompatibly.

Historical note: schema 1 additionally salted keys with
``repro.__version__``, which quarantined every version bump into a fresh
cache namespace and defeated cross-sweep dedupe.  Schema 2 dropped the
salt; :func:`repro.runner.cache.migrate_cache` rehashes old cache
directories in place, one-shot.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict

__all__ = [
    "CACHE_SCHEMA",
    "JobSpec",
    "canonical_json",
    "content_key",
    "dumbbell_spec",
    "parking_lot_spec",
]

#: bump when the payload layout of cached results (or the keying scheme)
#: changes incompatibly; 2 = content-addressed keys (no version salt)
CACHE_SCHEMA = 2


def content_key(kind: str, params: Dict[str, Any]) -> str:
    """Content address of one job: hex SHA-256 of kind + canonical params.

    This is the single keying function shared by the runner's
    :class:`~repro.runner.cache.ResultCache` and the fleet's
    :class:`~repro.fleet.store.ResultStore` — the reason a point finished
    under either is a cache hit for both.
    """
    material = f"{CACHE_SCHEMA}|{kind}|{canonical_json(params)}"
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


def canonical_json(obj: Any) -> str:
    """Stable JSON encoding: sorted keys, no whitespace, shortest floats.

    Raises ``TypeError`` for values that cannot round-trip through JSON,
    which is deliberate — a spec that cannot be serialized cannot be
    hashed, cached, or shipped to a worker process.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class JobSpec:
    """One unit of work for the runner: ``kind`` + JSON params."""

    kind: str
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        # Fail fast (at spec-construction time, in the parent process)
        # rather than deep inside a worker: params must be JSON-clean.
        canonical_json(self.params)

    @property
    def cache_key(self) -> str:
        """Content address uniquely identifying this job's result.

        Purely a function of ``kind`` + ``params`` (via
        :func:`content_key`), so identical points dedupe across sweeps
        and package versions, not just within one run.
        """
        return content_key(self.kind, self.params)

    def describe(self) -> str:
        """Short human label for logs: kind plus the identifying params."""
        scheme = self.params.get("scheme")
        seed = self.params.get("seed")
        bits = [self.kind]
        if scheme is not None:
            bits.append(str(scheme))
        if seed is not None:
            bits.append(f"seed={seed}")
        return "/".join(bits)


def dumbbell_spec(scheme: str, **kwargs) -> JobSpec:
    """Spec for one :func:`repro.experiments.common.run_dumbbell` point.

    The seed is made explicit (defaulting to ``run_dumbbell``'s own
    default of 1) so that the cache key always covers scheme + kwargs +
    seed, even when the caller relies on the default.
    """
    params = dict(kwargs)
    params["scheme"] = scheme
    params.setdefault("seed", 1)
    return JobSpec(kind="dumbbell", params=params)


def parking_lot_spec(scheme: str, **kwargs) -> JobSpec:
    """Spec for one parking-lot run (Figure 11), one scheme per job."""
    params = dict(kwargs)
    params["scheme"] = scheme
    params.setdefault("seed", 1)
    return JobSpec(kind="parking_lot", params=params)
