#!/usr/bin/env python3
"""Window dynamics: PERT's gentle sawtooth vs SACK's loss-driven one.

Traces one flow's congestion window under each scheme on the same
bottleneck and renders the series as ASCII plots.  PERT's probabilistic
35 % early decreases produce a shallow, frequent sawtooth that never
fills the buffer; SACK rides the buffer up to overflow and halves.

Run:  python examples/cwnd_dynamics.py
(Set REPRO_QUICK=1 for a seconds-scale smoke run — used by CI.)
"""

import os

from repro import DropTailQueue, Dumbbell, PertSender, SackSender, Simulator, connect_flow
from repro.sim.trace import FlowTracer, ascii_series

QUICK = os.environ.get("REPRO_QUICK", "").lower() in ("1", "on", "true", "yes")
TRACE_START, DURATION = (2.0, 12.0) if QUICK else (5.0, 30.0)


def trace(sender_cls, label):
    sim = Simulator(seed=21)
    net = Dumbbell(
        sim, n_left=3, n_right=3, bottleneck_bw=8e6, bottleneck_delay=0.02,
        qdisc_fwd=lambda: DropTailQueue(80),
        access_delays_left=[0.005] * 3, access_delays_right=[0.005] * 3,
    )
    tracer = None
    for i in range(3):
        sender, _ = connect_flow(sim, net.left[i], net.right[i], flow_id=i,
                                 sender_cls=sender_cls)
        sender.start(at=0.2 * i)
        if i == 0:
            tracer = FlowTracer(sim, sender, interval=0.05, start=TRACE_START)
    sim.run(until=DURATION)
    stats = tracer.cwnd_stats()
    print(ascii_series(tracer.cwnd,
                       label=f"{label} cwnd (packets), "
                             f"{TRACE_START:.0f}-{DURATION:.0f} s"))
    print(f"  mean={stats['mean']:.1f}  min={stats['min']:.1f}  "
          f"max={stats['max']:.1f}  peak/trough={stats['swing']:.2f}\n")
    return stats


def main() -> None:
    sack = trace(SackSender, "SACK")
    pert = trace(PertSender, "PERT")
    print(f"PERT's window swing ({pert['swing']:.2f}x) is shallower than "
          f"SACK's ({sack['swing']:.2f}x):\nearly 35% decreases replace "
          "buffer-overflow halvings (paper Section 3).")


if __name__ == "__main__":
    main()
