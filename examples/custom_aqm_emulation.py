#!/usr/bin/env python3
"""Emulating *other* AQM schemes at the end host (paper Sections 6-8).

The paper's closing claim: "the proposed scheme is flexible in the sense
that other AQM schemes can be potentially emulated at the end-host."
This example demonstrates exactly that with three response functions
plugged into the same sender machinery:

* PERT/RED   — the paper's gentle-RED curve,
* PERT/PI    — the discretised PI controller of Section 6,
* PERT/REM   — Random Exponential Marking (the paper's reference [2]),
* and a *user-defined* response: a quadratic curve written inline.

All four run over plain DropTail routers and are compared on the same
workload.

Run:  python examples/custom_aqm_emulation.py
(Set REPRO_QUICK=1 for a seconds-scale smoke run — used by CI.)
"""

import os

from repro import (
    DropTailQueue,
    Dumbbell,
    PertConfig,
    PertPiConfig,
    PertPiSender,
    PertSender,
    Simulator,
    connect_flow,
    jain_index,
)
from repro.core.pert_rem import PertRemSender
from repro.fluid.stability import pert_pi_gains
from repro.sim.monitors import DropLog, LinkWindow, QueueSampler

QUICK = os.environ.get("REPRO_QUICK", "").lower() in ("1", "on", "true", "yes")

BANDWIDTH = 10e6
N_FLOWS = 4 if QUICK else 6
BUFFER = 100
DURATION, WARMUP = (12.0, 4.0) if QUICK else (40.0, 15.0)


class QuadraticCurve:
    """A custom response law: probability grows quadratically in delay.

    Any object with a ``probability(queuing_delay) -> float`` method (or
    ``__call__``) can replace PERT's curve — this one responds more
    timidly than gentle RED near the threshold and more sharply later.
    """

    def __init__(self, t_min=0.005, t_full=0.025):
        self.t_min = t_min
        self.t_full = t_full

    def probability(self, queuing_delay: float) -> float:
        if queuing_delay <= self.t_min:
            return 0.0
        x = min(1.0, (queuing_delay - self.t_min) / (self.t_full - self.t_min))
        return x * x

    __call__ = probability


class QuadraticPertSender(PertSender):
    """PERT with the quadratic curve swapped in."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.curve = QuadraticCurve()


def run(sender_cls, label, **sender_kwargs):
    sim = Simulator(seed=9)
    net = Dumbbell(
        sim, n_left=N_FLOWS, n_right=N_FLOWS, bottleneck_bw=BANDWIDTH,
        bottleneck_delay=0.02, qdisc_fwd=lambda: DropTailQueue(BUFFER),
        access_delays_left=[0.005] * N_FLOWS,
        access_delays_right=[0.005] * N_FLOWS,
    )
    flows = []
    for i in range(N_FLOWS):
        sender, sink = connect_flow(sim, net.left[i], net.right[i],
                                    flow_id=i, sender_cls=sender_cls,
                                    **sender_kwargs)
        sender.start(at=0.2 * i)
        flows.append((sender, sink))
    window = LinkWindow(sim, net.fwd)
    drops = DropLog(net.bottleneck_queue)
    queue = QueueSampler(sim, net.bottleneck_queue, interval=0.05)
    sim.run(until=WARMUP)
    window.open()
    d0 = [sink.rcv_next for _, sink in flows]
    sim.run(until=DURATION)
    window.close()
    span = DURATION - WARMUP
    goodputs = [(s.rcv_next - g) * 8000.0 / span for (_, s), g in zip(flows, d0)]
    print(f"{label:14s} queue={queue.mean(WARMUP, DURATION):6.1f} pkts"
          f"  drops={drops.count(start=WARMUP):3d}"
          f"  util={window.utilization:6.1%}"
          f"  fairness={jain_index(goodputs):.3f}"
          f"  early={sum(s.early_responses for s, _ in flows)}")


def main() -> None:
    print(f"{N_FLOWS} flows, {BANDWIDTH/1e6:.0f} Mbps DropTail bottleneck — "
          "four emulated AQMs, zero router support\n")
    run(PertSender, "PERT/RED")
    pkt_rate = BANDWIDTH / 8000.0
    k, m = pert_pi_gains(capacity=pkt_rate, n_minus=N_FLOWS // 2, r_plus=0.1)
    run(PertPiSender, "PERT/PI",
        config=PertPiConfig(k=k, m=m, target_delay=0.003,
                            delta=N_FLOWS / pkt_rate))
    run(PertRemSender, "PERT/REM")
    run(QuadraticPertSender, "PERT/custom")
    print("\nSwapping the response law is a one-class change — the paper's"
          "\ngenerality claim, demonstrated.")


if __name__ == "__main__":
    main()
