#!/usr/bin/env python3
"""Fluid-model stability study (paper Section 5, Figure 13).

1. Tabulates the minimum stable sampling interval δ against the flow
   lower bound N⁻ (eq. 13) for the paper's Figure 13(a) configuration.
2. Integrates the PERT/RED delay differential equations at the paper's
   three delays (100, 160, 171 ms) and classifies each trajectory.
3. Bisects for the empirical stability boundary and renders an ASCII
   plot of the window trajectory on both sides of it.

Run:  python examples/fluid_stability.py
(Set REPRO_QUICK=1 for a seconds-scale smoke run — used by CI.)
"""

import os

from repro.fluid import (
    find_stability_boundary,
    make_fluid_model,
    min_delta,
    trajectory_is_stable,
)

QUICK = os.environ.get("REPRO_QUICK", "").lower() in ("1", "on", "true", "yes")
#: integration horizon per trajectory and bisection tolerance (s)
HORIZON, TOL = (20.0, 5e-3) if QUICK else (60.0, 1e-3)

FIG13A = dict(capacity=1000.0, r_plus=0.2, p_max=0.1, t_min=0.05,
              t_max=0.1, alpha=0.99)
FIG13BD = dict(capacity=100.0, n_flows=5, p_max=0.1, t_min=0.05,
               t_max=0.1, alpha=0.99, delta=1e-4)


def ascii_plot(values, width=64, height=12, title=""):
    """Tiny ASCII line plot of a 1-D series."""
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    step = max(1, len(values) // width)
    cols = values[::step][:width]
    rows = []
    for level in range(height, -1, -1):
        thresh = lo + span * level / height
        line = "".join("*" if v >= thresh else " " for v in cols)
        rows.append(f"{thresh:8.2f} |{line}")
    print(title)
    print("\n".join(rows))
    print(" " * 10 + "-" * len(cols))


def main() -> None:
    print("Figure 13(a): minimum stable sampling interval (eq. 13)")
    print(f"{'N-':>4s}  {'delta_min (s)':>14s}")
    for n in (1, 2, 5, 10, 20, 30, 40, 50):
        print(f"{n:4d}  {min_delta(n_minus=n, **FIG13A):14.4f}")

    print("\nFigure 13(b-d): PERT/RED DDE trajectories (C=100 pkt/s, N=5)")
    for rtt in (0.100, 0.160, 0.171):
        model = make_fluid_model("pert_red", rtt=rtt, **FIG13BD)
        sol = model.simulate(duration=HORIZON, dt=2e-3)
        verdict = "stable" if trajectory_is_stable(sol) else "UNSTABLE"
        w_star = model.equilibrium()[0]
        print(f"  R = {rtt*1e3:5.0f} ms: {verdict:8s}  (W* = {w_star:.2f} pkts)")

    def make(rtt):
        return make_fluid_model("pert_red", rtt=rtt, **FIG13BD).simulate(HORIZON, dt=4e-3)

    boundary = find_stability_boundary(make, lo=0.15, hi=0.19, tol=TOL)
    print(f"\nEmpirical stability boundary: R ~ {boundary*1e3:.0f} ms "
          f"(paper observes ~171 ms)")

    stable = make(boundary - 0.02).component(0)[-6000:]
    unstable = make(boundary + 0.02).component(0)[-6000:]
    print()
    ascii_plot(list(stable), title=f"W(t), R = {(boundary-0.02)*1e3:.0f} ms "
                                   "(converged)")
    print()
    ascii_plot(list(unstable), title=f"W(t), R = {(boundary+0.02)*1e3:.0f} ms "
                                     "(oscillating)")


if __name__ == "__main__":
    main()
