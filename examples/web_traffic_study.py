#!/usr/bin/env python3
"""Bursty web traffic under PERT vs DropTail (paper Section 4.4).

Sweeps the number of background web sessions and shows PERT absorbing
the bursts: the queue stays short and the long flows stay fair, while
plain SACK over DropTail builds standing queues and drops packets.
Also demonstrates driving the traffic generators directly.

Run:  python examples/web_traffic_study.py
(Set REPRO_QUICK=1 for a seconds-scale smoke run — used by CI.)
"""

import itertools
import os

from repro import DropTailQueue, Dumbbell, PertSender, SackSender, Simulator
from repro.experiments.fig9_web import run as fig9_run
from repro.experiments.report import format_table
from repro.sim.monitors import QueueSampler
from repro.traffic import start_web_sessions

QUICK = os.environ.get("REPRO_QUICK", "").lower() in ("1", "on", "true", "yes")
DEMO_SESSIONS, DEMO_DURATION = (3, 10.0) if QUICK else (5, 30.0)


def direct_generator_demo() -> None:
    """Drive WebSession directly: one heavy client behind a 4 Mbps link."""
    sim = Simulator(seed=11)
    db = Dumbbell(sim, n_left=1, n_right=1, bottleneck_bw=4e6,
                  bottleneck_delay=0.02,
                  qdisc_fwd=lambda: DropTailQueue(60))
    sessions = start_web_sessions(
        sim, DEMO_SESSIONS, server=db.left[0], client=db.right[0],
        flow_ids=itertools.count(), start_window=2.0,
        sender_cls=PertSender, think_mean=0.5,
    )
    queue = QueueSampler(sim, db.bottleneck_queue, interval=0.05)
    sim.run(until=DEMO_DURATION)
    pages = sum(s.pages_fetched for s in sessions)
    objects = sum(s.objects_fetched for s in sessions)
    print(f"{DEMO_SESSIONS} PERT web sessions over {DEMO_DURATION:.0f} s: "
          f"{pages} pages, {objects} objects,"
          f" mean queue {queue.mean():.1f} pkts,"
          f" drops {db.bottleneck_queue.stats.drops}")


def main() -> None:
    print("== web-session generator demo ==")
    direct_generator_demo()

    print("\n== Figure 9 slice: web load sweep ==")
    if QUICK:
        rows = fig9_run(session_counts=[2, 4], bandwidth=6e6, n_fwd=4,
                        duration=10.0, warmup=4.0, seed=1,
                        schemes=("pert", "sack-droptail"))
    else:
        rows = fig9_run(session_counts=[2, 8], bandwidth=10e6, n_fwd=8,
                        duration=40.0, warmup=15.0, seed=1,
                        schemes=("pert", "sack-droptail"))
    print(format_table(
        rows, ["web_sessions", "scheme", "norm_queue", "drop_rate",
               "utilization", "jain"],
        title="Impact of web traffic (paper Figure 9, scaled)"))
    print("\nPERT holds the queue short and lossless as the web load "
          "grows;\nDropTail lets the bursts fill the buffer (paper "
          "Sec. 4.4).")


if __name__ == "__main__":
    main()
