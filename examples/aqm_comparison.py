#!/usr/bin/env python3
"""AQM comparison: all four paper schemes across an RTT sweep.

Reproduces a slice of the paper's Figure 7 using the experiment harness
directly: for each end-to-end RTT, runs SACK/DropTail, SACK/RED-ECN
(router AQM), TCP Vegas, and PERT, then prints the four headline metrics.

Run:  python examples/aqm_comparison.py [--full | --quick]

``--full`` widens the sweep toward the paper's 10 ms - 1 s range (slow);
``--quick`` (or REPRO_QUICK=1) shrinks it to a CI-sized smoke run.
"""

import argparse
import os

from repro.experiments.fig7_rtt import run
from repro.experiments.report import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    scale = parser.add_mutually_exclusive_group()
    scale.add_argument("--full", action="store_true",
                       help="wider, slower sweep (closer to paper scale)")
    scale.add_argument("--quick", action="store_true",
                       help="CI-sized smoke run (also: REPRO_QUICK=1)")
    args = parser.parse_args()
    quick = args.quick or (not args.full and os.environ.get(
        "REPRO_QUICK", "").lower() in ("1", "on", "true", "yes"))

    if args.full:
        rtts = [0.01, 0.02, 0.06, 0.120, 0.240, 0.480, 1.0]
    elif quick:
        rtts = [0.02, 0.06]
    else:
        rtts = [0.02, 0.06, 0.120]
    rows = run(rtts=rtts,
               bandwidth=8e6 if quick else 16e6,
               n_fwd=6 if quick else 12,
               base_duration=10.0 if quick else 40.0,
               seed=1)
    print(format_table(
        rows,
        ["rtt_ms", "scheme", "norm_queue", "drop_rate", "utilization",
         "jain"],
        title="Impact of end-to-end RTT (paper Figure 7, scaled)",
    ))
    print(
        "\nReading guide (paper Sec. 4.2): PERT should track SACK/RED-ECN's"
        "\nqueue and drop rate without any router support; SACK/DropTail"
        "\nkeeps standing queues and visible loss; Vegas holds utilization"
        "\nat the price of fairness."
    )


if __name__ == "__main__":
    main()
