#!/usr/bin/env python3
"""Quickstart: PERT vs standard TCP on a shared bottleneck.

Builds a 10 Mbps / 60 ms dumbbell, runs eight flows of each scheme, and
prints the paper's headline comparison: PERT keeps the bottleneck queue
small and nearly lossless — with no router support — while matching
standard TCP's utilization and improving its fairness.

Run:  python examples/quickstart.py
(Set REPRO_QUICK=1 for a seconds-scale smoke run — used by CI.)
"""

import os

from repro import (
    DropTailQueue,
    Dumbbell,
    PertSender,
    SackSender,
    Simulator,
    connect_flow,
    jain_index,
)
from repro.sim.monitors import DropLog, LinkWindow, QueueSampler

QUICK = os.environ.get("REPRO_QUICK", "").lower() in ("1", "on", "true", "yes")

BANDWIDTH = 10e6  # 10 Mbps bottleneck
N_FLOWS = 4 if QUICK else 8
BUFFER = 100  # packets (~ one bandwidth-delay product)
DURATION, WARMUP = (12.0, 4.0) if QUICK else (40.0, 15.0)


def run(sender_cls, label: str) -> None:
    sim = Simulator(seed=7)
    dumbbell = Dumbbell(
        sim,
        n_left=N_FLOWS,
        n_right=N_FLOWS,
        bottleneck_bw=BANDWIDTH,
        bottleneck_delay=0.02,
        qdisc_fwd=lambda: DropTailQueue(BUFFER),
        access_delays_left=[0.005] * N_FLOWS,
        access_delays_right=[0.005] * N_FLOWS,
    )

    flows = []
    for i in range(N_FLOWS):
        sender, sink = connect_flow(
            sim, dumbbell.left[i], dumbbell.right[i], flow_id=i,
            sender_cls=sender_cls,
        )
        sender.start(at=0.2 * i)  # staggered starts, as in the paper
        flows.append((sender, sink))

    window = LinkWindow(sim, dumbbell.fwd)
    drops = DropLog(dumbbell.bottleneck_queue)
    queue = QueueSampler(sim, dumbbell.bottleneck_queue, interval=0.05)

    sim.run(until=WARMUP)
    window.open()
    delivered0 = [sink.rcv_next for _, sink in flows]
    sim.run(until=DURATION)
    window.close()

    span = DURATION - WARMUP
    goodputs = [
        (sink.rcv_next - d0) * 8000.0 / span
        for (_, sink), d0 in zip(flows, delivered0)
    ]
    early = sum(getattr(s, "early_responses", 0) for s, _ in flows)
    print(
        f"{label:12s} queue={queue.mean(WARMUP, DURATION):6.1f} pkts"
        f"  drops={drops.count(start=WARMUP):4d}"
        f"  utilization={window.utilization:5.1%}"
        f"  fairness={jain_index(goodputs):.3f}"
        f"  early_responses={early}"
    )


def main() -> None:
    print(f"{N_FLOWS} flows, {BANDWIDTH/1e6:.0f} Mbps bottleneck, "
          f"{BUFFER}-packet DropTail buffer, measured over "
          f"[{WARMUP:.0f}s, {DURATION:.0f}s]\n")
    run(SackSender, "SACK TCP")
    run(PertSender, "PERT")
    print("\nPERT emulates RED/ECN *inside the sender* — same FIFO router,"
          "\nbut the queue stays short and losses vanish (paper Sec. 4).")


if __name__ == "__main__":
    main()
