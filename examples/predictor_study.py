#!/usr/bin/env python3
"""Congestion-predictor study (paper Section 2, Figures 2-4).

Runs one Section 2 traffic case, tags a flow, and replays every
congestion predictor over its per-ACK RTT trace:

* Figure 2's contrast — the fraction of high-RTT periods ending in loss
  under flow-level vs queue-level loss accounting,
* Figure 3's ranking — efficiency / false positives / false negatives
  per predictor,
* Figure 4's distribution — queue occupancy at srtt_0.99 false positives.

Run:  python examples/predictor_study.py
(Set REPRO_QUICK=1 for a seconds-scale smoke run — used by CI.)
"""

import os

from repro.experiments.fig2_loss_correlation import rows_from_traces as fig2_rows
from repro.experiments.fig3_predictors import rows_from_traces as fig3_rows
from repro.experiments.fig4_false_positive_pdf import false_positive_queue_levels
from repro.experiments.report import format_table
from repro.experiments.section2 import TrafficCase, collect_case_trace
from repro.metrics.stats import histogram_pdf


QUICK = os.environ.get("REPRO_QUICK", "").lower() in ("1", "on", "true", "yes")


def main() -> None:
    if QUICK:
        case = TrafficCase("demo", n_fwd=6, n_rev=2, web_sessions=3)
        bandwidth, duration = 8e6, 15.0
    else:
        case = TrafficCase("demo", n_fwd=14, n_rev=5, web_sessions=8)
        bandwidth, duration = 16e6, 60.0
    print(f"collecting trace: {case.n_fwd}+{case.n_rev} long flows, "
          f"{case.web_sessions} web sessions, "
          f"{bandwidth/1e6:.0f} Mbps bottleneck ...")
    trace = collect_case_trace(case, bandwidth=bandwidth, duration=duration,
                               seed=4)
    traces = {case.name: trace}
    print(f"observed flow: {len(trace.rtt_trace)} RTT samples, "
          f"{len(trace.flow_losses)} own losses, "
          f"{len(trace.queue_drops)} queue drops\n")

    print(format_table(fig2_rows(traces),
                       ["case", "long_flows", "web", "flow_level",
                        "queue_level"],
                       title="Figure 2 — high-RTT -> loss fraction"))
    print("\n(the queue-level view shows delay predicts congestion far "
          "better\nthan single-flow tcpdump studies suggested)\n")

    print(format_table(fig3_rows(traces),
                       ["predictor", "efficiency", "false_pos", "false_neg"],
                       title="Figure 3 — predictor comparison"))

    levels = false_positive_queue_levels(traces)
    if levels:
        pdf = histogram_pdf(levels, bins=10)
        rows = [{"norm_queue": c, "pdf": p} for c, p in pdf]
        below = sum(1 for x in levels if x < 0.5) / len(levels)
        print()
        print(format_table(rows, ["norm_queue", "pdf"],
                           title="Figure 4 — queue occupancy at srtt_0.99 "
                                 "false positives"))
        print(f"\nfraction below half occupancy: {below:.2f} "
              "(paper: most of the mass)")


if __name__ == "__main__":
    main()
